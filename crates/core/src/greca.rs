//! GRECA — Algorithm 1 of the paper.
//!
//! An NRA-style top-k computation making **sequential accesses only**,
//! round-robin over the preference and affinity lists, maintaining an
//! item buffer of `[LB, UB]` envelopes, a global threshold for unseen
//! items, and terminating via either
//!
//! * the **threshold condition** — `Sc_th ≤ kth LB` and the buffer holds
//!   exactly `k` items (lines 16–19), or
//! * the **buffer condition** — the paper's novelty: the buffer holds
//!   `k' > k` items and the `k`-th LB is no smaller than the UB of each
//!   of the remaining `k' − k` items, which are then pruned (lines
//!   21–23; Theorem 1 shows this implies the threshold condition for the
//!   monotone consensus functions).
//!
//! Returned is the top-`k` **itemset** — the ranking inside it may be a
//! partial order, exactly as §3.1 describes.
//!
//! ## The allocation-free kernel
//!
//! The execution core is engineered like a classic NRA/TA inner loop:
//! item state lives in a **dense arena** indexed by the item's position
//! in the first preference list (the substrate's contiguous layout on
//! the warm path) instead of a hash map; bound maintenance is
//! **incremental** (pair envelopes refresh only when an affinity list
//! was read, versioned by bitwise change; fully-resolved items skip
//! recomputation; under no-disagreement consensus only the
//! cursor-driven UB chain recomputes); the k-th lower bound comes from
//! a **bounded binary heap** rather than a full sort; and all working
//! memory lives in a reusable [`GrecaScratch`], so steady-state serving
//! allocates nothing. Every shortcut preserves **bit-identical**
//! results — same itemsets, bounds, access counts, sweeps and stop
//! reasons as the straightforward implementation, which survives
//! verbatim as the oracle in `tests/kernel_identity.rs`.

use crate::access::AccessStats;
use crate::interval::Interval;
use crate::lists::{GrecaInputs, ListKind};
use crate::score::BoundScorer;
use greca_consensus::ConsensusFunction;
use greca_dataset::ItemId;
use serde::{Deserialize, Serialize};

/// Early-termination policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum StoppingRule {
    /// Full GRECA: buffer condition with inter-item pruning, plus the
    /// (cheap) threshold verification. The default.
    #[default]
    Greca,
    /// Traditional threshold-style stop only: terminate when the
    /// threshold drops below the k-th lower bound **and** the buffer
    /// holds exactly `k` items; no inter-item pruning. This is the
    /// baseline GRECA's buffer condition improves upon (§3.2).
    ThresholdOnly,
    /// Never stop early; scan every list to the end.
    Exhaustive,
}

/// Why a run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The buffer condition fired (k'−k items pruned away).
    Buffer,
    /// The threshold condition fired with exactly k buffered items.
    Threshold,
    /// All lists were scanned to exhaustion.
    Exhausted,
}

/// How often the (O(|buffer|)) bound-refresh and stopping checks run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CheckInterval {
    /// After every full round-robin sweep (most faithful to Algorithm 1).
    EverySweep,
    /// After every `n` sweeps.
    Sweeps(u32),
    /// Adaptive: stretches the interval as the buffer grows (bounded
    /// staleness, much faster on large inputs). Never affects
    /// correctness, only how promptly a stopping condition is noticed.
    Adaptive,
}

/// GRECA run configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrecaConfig {
    /// Result size `k`.
    pub k: usize,
    /// Early-termination policy.
    pub stopping: StoppingRule,
    /// Stopping-check cadence.
    pub check_interval: CheckInterval,
}

impl Default for GrecaConfig {
    /// The paper's default `k = 10` with the standard stopping rule.
    fn default() -> Self {
        GrecaConfig::top(10)
    }
}

impl GrecaConfig {
    /// Default configuration for a given `k`.
    pub fn top(k: usize) -> Self {
        GrecaConfig {
            k,
            stopping: StoppingRule::Greca,
            check_interval: CheckInterval::EverySweep,
        }
    }

    /// Use the given stopping rule.
    pub fn stopping(mut self, rule: StoppingRule) -> Self {
        self.stopping = rule;
        self
    }

    /// Use the given check cadence.
    pub fn check_interval(mut self, ci: CheckInterval) -> Self {
        self.check_interval = ci;
        self
    }
}

/// One returned item with its score envelope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopKItem {
    /// The recommended item.
    pub item: ItemId,
    /// Lower bound of its consensus score at termination.
    pub lb: f64,
    /// Upper bound of its consensus score at termination.
    pub ub: f64,
}

impl TopKItem {
    /// Whether the envelope pinned the exact score.
    pub fn is_exact(&self) -> bool {
        (self.ub - self.lb).abs() <= 1e-9
    }
}

/// Result of a top-k run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopKResult {
    /// The top-k itemset, ordered by decreasing lower bound (a partial
    /// order: ties/overlapping envelopes are not further distinguished).
    pub items: Vec<TopKItem>,
    /// Access counters.
    pub stats: AccessStats,
    /// Number of full round-robin sweeps performed.
    pub sweeps: u64,
    /// What terminated the run.
    pub stop_reason: StopReason,
}

impl TopKResult {
    /// The returned item ids in result order.
    pub fn item_ids(&self) -> Vec<ItemId> {
        self.items.iter().map(|t| t.item).collect()
    }
}

/// Per-item state of the dense arena: one slot per candidate item,
/// indexed by the item's position in the first preference list (the
/// substrate's contiguous layout on the warm path). `Copy` so the hot
/// loops read and write it by value.
#[derive(Debug, Clone, Copy)]
struct SlotMeta {
    /// The item id this slot stands for.
    id: u32,
    /// Apref components not yet seen (`n` at first touch minus reads).
    unseen: u32,
    /// Kernel `aff_version` the stored bounds were computed against.
    aff_version: u32,
    /// Check-counter stamp marking membership in the current top-k.
    topk_stamp: u32,
    /// Whether any preference list has surfaced this item yet.
    buffered: bool,
    /// Pruned by the buffer condition (ignored if re-encountered).
    pruned: bool,
    /// A new apref component landed since the bounds were computed.
    stale: bool,
    /// `[LB, UB]` envelope (meaningful only after the first refresh).
    bounds: Interval,
}

/// Reusable workspace of the GRECA kernel: the dense item arena, cursor
/// state, pair-envelope cache and the bounded top-k heap, all allocated
/// once and recycled across runs.
///
/// A scratch value is plain memory — it carries no results between runs
/// (every buffer is re-initialized by the next
/// [`greca_topk_with`] call) — so reusing one across queries is purely
/// an allocation optimization. [`crate::query::GrecaEngine`] keeps a
/// pool of these so serving paths (including every
/// [`crate::query::run_batch`] worker) are allocation-free after
/// warmup; one-shot callers can just use [`greca_topk`], which creates
/// a scratch internally.
#[derive(Debug, Default)]
pub struct GrecaScratch {
    /// Item id → arena slot (direct-indexed; rebuilt per run).
    slot_of: Vec<u32>,
    /// One slot per candidate item.
    slots: Vec<SlotMeta>,
    /// Flattened seen aprefs `[slot · n + member]`; NaN = unseen (scores
    /// are validated finite at ingestion).
    aprefs: Vec<f64>,
    /// Slots in first-touch order — the deterministic iteration order
    /// that replaced the old `HashMap` buffer.
    touched: Vec<u32>,
    /// Next read position per list (round-robin list order).
    positions: Vec<usize>,
    /// Last read score per list (round-robin list order).
    cursors: Vec<f64>,
    /// Round-robin index of each period's first list.
    period_base: Vec<usize>,
    /// Seen static component per pair; NaN = unseen.
    pair_static: Vec<f64>,
    /// Seen periodic components, flattened `[period · num_pairs + pair]`.
    pair_period: Vec<f64>,
    /// Cached per-pair affinity envelopes.
    pair_affs: Vec<Interval>,
    /// `n × n` member-pair index table (see `BoundScorer::fill_pair_index`).
    pair_index: Vec<usize>,
    /// Per-member apref cursor, refreshed at each bounds refresh.
    pref_cursors: Vec<f64>,
    /// Apref envelope scratch for one item / the threshold.
    aprefs_iv: Vec<Interval>,
    /// Member-preference envelope scratch for the scorer.
    prefs_iv: Vec<Interval>,
    /// Dense `n × n` lo-endpoint pair-affinity matrix (clamped ≥ 0),
    /// for the split-chain fast path.
    aff_lo_mat: Vec<f64>,
    /// Dense `n × n` hi-endpoint pair-affinity matrix (clamped ≥ 0).
    aff_hi_mat: Vec<f64>,
    /// Raw per-member endpoint values for one item's chain.
    end_vals: Vec<f64>,
    /// The same endpoints clamped ≥ 0 (the `mul_nonneg` operand clamp).
    end_nonneg: Vec<f64>,
    /// Periodic component lows for one pair envelope.
    comp_los: Vec<f64>,
    /// Periodic component highs for one pair envelope.
    comp_his: Vec<f64>,
    /// Bounded top-k heap of `(lb, id)`, worst-at-root.
    heap: Vec<(f64, u32)>,
    /// Final ranking scratch.
    ranked: Vec<(u32, Interval)>,
}

impl GrecaScratch {
    /// An empty workspace (buffers grow on first use and are retained).
    pub fn new() -> Self {
        GrecaScratch::default()
    }

    /// Bytes of heap capacity this workspace retains — what the engine's
    /// scratch pool budgets against. Capacity, not length: buffers are
    /// truncated between runs but keep their allocations, and the
    /// allocation is what a pooled workspace actually costs.
    pub fn memory_bytes(&self) -> usize {
        fn vec_bytes<T>(v: &Vec<T>) -> usize {
            v.capacity() * std::mem::size_of::<T>()
        }
        vec_bytes(&self.slot_of)
            + vec_bytes(&self.slots)
            + vec_bytes(&self.aprefs)
            + vec_bytes(&self.touched)
            + vec_bytes(&self.positions)
            + vec_bytes(&self.cursors)
            + vec_bytes(&self.period_base)
            + vec_bytes(&self.pair_static)
            + vec_bytes(&self.pair_period)
            + vec_bytes(&self.pair_affs)
            + vec_bytes(&self.pair_index)
            + vec_bytes(&self.pref_cursors)
            + vec_bytes(&self.aprefs_iv)
            + vec_bytes(&self.prefs_iv)
            + vec_bytes(&self.aff_lo_mat)
            + vec_bytes(&self.aff_hi_mat)
            + vec_bytes(&self.end_vals)
            + vec_bytes(&self.end_nonneg)
            + vec_bytes(&self.comp_los)
            + vec_bytes(&self.comp_his)
            + vec_bytes(&self.heap)
            + vec_bytes(&self.ranked)
    }

    /// Grow retained capacity to at least `bytes` — test hook for the
    /// scratch pool's byte-budget eviction.
    #[cfg(test)]
    pub(crate) fn inflate_for_test(&mut self, bytes: usize) {
        self.aprefs
            .reserve(bytes.div_ceil(std::mem::size_of::<f64>()));
    }
}

/// Whether `a` ranks strictly *worse* than `b` under the buffer
/// condition's `(LB descending, id ascending)` order.
#[inline]
fn ranks_worse(a: (f64, u32), b: (f64, u32)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 > b.1)
}

/// Push into a bounded binary heap keeping the `k` best `(lb, id)`
/// entries; the root is the *worst* kept entry, so once the heap is
/// full its root's `lb` is exactly the k-th largest lower bound.
#[inline]
fn heap_push_bounded(heap: &mut Vec<(f64, u32)>, k: usize, item: (f64, u32)) {
    if heap.len() < k {
        heap.push(item);
        let mut i = heap.len() - 1;
        while i > 0 {
            let p = (i - 1) / 2;
            if ranks_worse(heap[i], heap[p]) {
                heap.swap(i, p);
                i = p;
            } else {
                break;
            }
        }
    } else if ranks_worse(heap[0], item) {
        heap[0] = item;
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut w = i;
            if l < heap.len() && ranks_worse(heap[l], heap[w]) {
                w = l;
            }
            if r < heap.len() && ranks_worse(heap[r], heap[w]) {
                w = r;
            }
            if w == i {
                break;
            }
            heap.swap(i, w);
            i = w;
        }
    }
}

/// The kernel's per-run state: borrowed inputs and scorer, the scratch
/// arena, and the run counters. Everything allocation-bearing lives in
/// the scratch; this struct is cursors and counters.
struct Kernel<'a, 'b, 's> {
    inputs: &'a GrecaInputs<'a>,
    scorer: BoundScorer<'b>,
    scratch: &'s mut GrecaScratch,
    n: usize,
    num_pairs: usize,
    /// Round-robin index of the first static list.
    static_base: usize,
    stats: AccessStats,
    /// Live (buffered, unpruned) item count.
    live_count: usize,
    /// Items pruned by the buffer condition so far.
    pruned_count: usize,
    /// Bumped whenever any pair envelope changes bitwise; complete items
    /// whose stored version matches skip recomputation.
    aff_version: u32,
    /// An affinity list was read since the last pair-envelope refresh.
    affinity_dirty: bool,
    /// The pair envelopes have been computed at least once.
    pair_affs_ready: bool,
    /// Monotone counter stamping the current check's top-k slots.
    check_stamp: u32,
}

impl<'a, 'b, 's> Kernel<'a, 'b, 's> {
    fn new(
        inputs: &'a GrecaInputs<'a>,
        scorer: BoundScorer<'b>,
        scratch: &'s mut GrecaScratch,
    ) -> Self {
        let n = inputs.num_members;
        let num_pairs = inputs.num_pairs;
        let static_base = inputs.pref_lists.len();
        let stats = AccessStats::new(inputs.total_entries());

        // Re-initialize every scratch buffer for this run (capacity is
        // retained; no allocation after the first run at this shape).
        scratch.positions.clear();
        scratch.cursors.clear();
        for list in inputs.all_lists() {
            scratch.positions.push(0);
            // Before any read a descending list is bounded by its first
            // entry; +∞ would also be sound but needlessly loose.
            scratch.cursors.push(list.first_score().unwrap_or(0.0));
        }
        scratch.period_base.clear();
        let mut base = static_base + inputs.static_lists.len();
        for lists in &inputs.period_lists {
            scratch.period_base.push(base);
            base += lists.len();
        }
        scratch.pair_static.clear();
        scratch.pair_static.resize(num_pairs, f64::NAN);
        scratch.pair_period.clear();
        scratch
            .pair_period
            .resize(num_pairs * inputs.period_lists.len(), f64::NAN);
        scratch.pair_affs.clear();
        scratch.pair_affs.resize(num_pairs, Interval::exact(0.0));
        scorer.fill_pair_index(&mut scratch.pair_index);
        scratch.pref_cursors.clear();
        scratch.pref_cursors.resize(n, 0.0);
        scratch.touched.clear();
        scratch.heap.clear();

        // The dense arena: one slot per candidate item, in first-list
        // order (the substrate's contiguous layout on the warm path).
        // All preference lists rank the same itemset, so the first list
        // enumerates every id.
        scratch.slots.clear();
        if let Some(first) = inputs.pref_lists.first() {
            let max_id = first.ids.iter().copied().max().map_or(0, |i| i as usize);
            if scratch.slot_of.len() <= max_id {
                scratch.slot_of.resize(max_id + 1, 0);
            }
            scratch.slots.reserve(first.len());
            for (slot, &id) in first.ids.iter().enumerate() {
                scratch.slot_of[id as usize] = slot as u32;
                scratch.slots.push(SlotMeta {
                    id,
                    unseen: n as u32,
                    aff_version: 0,
                    topk_stamp: 0,
                    buffered: false,
                    pruned: false,
                    stale: false,
                    bounds: Interval::exact(0.0),
                });
            }
        }
        scratch.aprefs.clear();
        scratch.aprefs.resize(scratch.slots.len() * n, f64::NAN);

        Kernel {
            inputs,
            scorer,
            scratch,
            n,
            num_pairs,
            static_base,
            stats,
            live_count: 0,
            pruned_count: 0,
            aff_version: 0,
            affinity_dirty: false,
            pair_affs_ready: false,
            check_stamp: 0,
        }
    }

    /// One round-robin sweep: read one entry from every non-exhausted
    /// list. Returns false if nothing was read (all exhausted).
    fn sweep(&mut self) -> bool {
        let mut read_any = false;
        let n = self.n;
        let mut li = 0;
        for list in &self.inputs.pref_lists {
            let pos = self.scratch.positions[li];
            if pos < list.len() {
                let (id, score) = list.entry(pos);
                self.scratch.positions[li] = pos + 1;
                self.scratch.cursors[li] = score;
                self.stats.record_sa();
                read_any = true;
                let ListKind::Preference { member } = list.kind else {
                    unreachable!("preference lists carry Preference kinds");
                };
                let sc = &mut *self.scratch;
                let slot = sc.slot_of[id as usize] as usize;
                let meta = &mut sc.slots[slot];
                // Hard assert (one predictable compare per read): a
                // member list ranking an item absent from list 0 would
                // otherwise silently write into another item's slot.
                assert_eq!(
                    meta.id, id,
                    "preference lists must rank the same itemset (id {id} missing from list 0)"
                );
                if !meta.pruned {
                    if !meta.buffered {
                        meta.buffered = true;
                        sc.touched.push(slot as u32);
                        self.live_count += 1;
                    }
                    let cell = &mut sc.aprefs[slot * n + member as usize];
                    if cell.is_nan() {
                        meta.unseen -= 1;
                    }
                    *cell = score;
                    meta.stale = true;
                }
            }
            li += 1;
        }
        for list in &self.inputs.static_lists {
            let pos = self.scratch.positions[li];
            if pos < list.len() {
                let (pair, score) = list.entry(pos);
                self.scratch.positions[li] = pos + 1;
                self.scratch.cursors[li] = score;
                self.stats.record_sa();
                read_any = true;
                self.scratch.pair_static[pair as usize] = score;
                self.affinity_dirty = true;
            }
            li += 1;
        }
        for lists in &self.inputs.period_lists {
            for list in lists {
                let pos = self.scratch.positions[li];
                if pos < list.len() {
                    let (pair, score) = list.entry(pos);
                    self.scratch.positions[li] = pos + 1;
                    self.scratch.cursors[li] = score;
                    self.stats.record_sa();
                    read_any = true;
                    let ListKind::PeriodicAffinity { period } = list.kind else {
                        unreachable!("period lists carry PeriodicAffinity kinds");
                    };
                    self.scratch.pair_period[period as usize * self.num_pairs + pair as usize] =
                        score;
                    self.affinity_dirty = true;
                }
                li += 1;
            }
        }
        read_any
    }

    /// Cursor upper bound for the static component of a pair: the cursor
    /// of the (single) static list holding it, while that list is not
    /// exhausted. O(1) via the precomputed membership table — the linear
    /// `list_contains_pair` scan this replaced rechecked every list's
    /// ids on every refresh.
    fn static_cursor(&self, pair: usize) -> f64 {
        match self.inputs.static_list_of(pair) {
            Some(off) => {
                let li = self.static_base + off;
                if self.scratch.positions[li] < self.inputs.static_lists[off].len() {
                    0.0f64.max(self.scratch.cursors[li])
                } else {
                    0.0
                }
            }
            None => 0.0,
        }
    }

    /// Cursor upper bound for one periodic component of a pair (same
    /// O(1) membership lookup as [`Kernel::static_cursor`]).
    fn period_cursor(&self, period: usize, pair: usize) -> f64 {
        match self.inputs.period_list_of(period, pair) {
            Some(off) => {
                let li = self.scratch.period_base[period] + off;
                if self.scratch.positions[li] < self.inputs.period_lists[period][off].len() {
                    0.0f64.max(self.scratch.cursors[li])
                } else {
                    0.0
                }
            }
            None => 0.0,
        }
    }

    /// Refresh the cached pair-affinity envelopes from seen components
    /// and cursors — but only when an affinity list was read since the
    /// last refresh (otherwise every input is unchanged and so is every
    /// envelope). Bumps `aff_version` when any envelope moved bitwise.
    fn refresh_pair_affs(&mut self) {
        if self.pair_affs_ready && !self.affinity_dirty {
            return;
        }
        let mode_static = !self.inputs.static_lists.is_empty();
        let n_periods = self.inputs.period_lists.len();
        let mut changed = !self.pair_affs_ready;
        for pair in 0..self.num_pairs {
            let s_raw = self.scratch.pair_static[pair];
            let s_iv = if !s_raw.is_nan() {
                Interval::exact(s_raw)
            } else if !mode_static {
                // Affinity-agnostic modes have no static lists; the fold
                // ignores the static argument then.
                Interval::exact(0.0)
            } else {
                Interval::new(0.0, self.static_cursor(pair))
            };
            self.scratch.comp_los.clear();
            self.scratch.comp_his.clear();
            for p in 0..n_periods {
                let v = self.scratch.pair_period[p * self.num_pairs + pair];
                let iv = if !v.is_nan() {
                    Interval::exact(v)
                } else {
                    Interval::new(0.0, self.period_cursor(p, pair))
                };
                self.scratch.comp_los.push(iv.lo);
                self.scratch.comp_his.push(iv.hi);
            }
            let iv = self.scorer.pair_affinity_interval_scratch(
                s_iv,
                &self.scratch.comp_los,
                &self.scratch.comp_his,
            );
            if !changed && !iv.bit_eq(&self.scratch.pair_affs[pair]) {
                changed = true;
            }
            self.scratch.pair_affs[pair] = iv;
        }
        if changed {
            self.aff_version += 1;
        }
        self.pair_affs_ready = true;
        self.affinity_dirty = false;
    }

    /// Per-member apref cursor (max over that member's preference list).
    fn pref_cursor(&self, member: usize) -> f64 {
        let list = self.inputs.pref_lists.get(member).expect("member list");
        if self.scratch.positions[member] >= list.len() {
            // Exhausted: every item was seen in this list; any item still
            // lacking this component does not exist. Use the last value
            // (sound for the virtual unseen item of the threshold).
            list.last_score().unwrap_or(0.0)
        } else {
            self.scratch.cursors[member]
        }
    }

    /// Recompute live items' `[LB, UB]` envelopes — incrementally:
    ///
    /// * an item whose components are all seen and whose bounds were
    ///   computed against the current pair envelopes cannot have moved,
    ///   so it is skipped (its inputs are bit-identical to the last
    ///   computation);
    /// * under a no-disagreement consensus (the paper's AP/LM defaults)
    ///   the envelope's endpoints are **independent** scalar chains
    ///   ([`BoundScorer::splits_endpoints`]): an item's LB reads only
    ///   exact components, zeros and the pair-envelope lows, so a
    ///   non-stale item at the current `aff_version` recomputes just
    ///   its UB chain (the only part the moving cursors feed);
    /// * disagreement consensus functions cross endpoints and take the
    ///   full interval recomputation.
    ///
    /// Every computed value follows the reference operation order, so
    /// the maintained bounds are bit-identical to a full recompute.
    fn refresh_bounds(&mut self) {
        self.refresh_pair_affs();
        let n = self.n;
        for m in 0..n {
            let c = self.pref_cursor(m);
            self.scratch.pref_cursors[m] = c;
        }
        let aff_version = self.aff_version;
        let split = self.scorer.splits_endpoints();
        if split {
            // Dense clamped endpoint matrices for the scalar chains,
            // rebuilt per refresh (n² entries — tiny). The diagonal
            // stays exactly 0.0: `score_end_split`'s branchless inner
            // product depends on it.
            let sc = &mut *self.scratch;
            sc.aff_lo_mat.clear();
            sc.aff_lo_mat.resize(n * n, 0.0);
            sc.aff_hi_mat.clear();
            sc.aff_hi_mat.resize(n * n, 0.0);
            for u in 0..n {
                for v in 0..n {
                    if v != u {
                        let iv = sc.pair_affs[sc.pair_index[u * n + v]];
                        sc.aff_lo_mat[u * n + v] = iv.lo.max(0.0);
                        sc.aff_hi_mat[u * n + v] = iv.hi.max(0.0);
                    }
                }
            }
            sc.end_vals.clear();
            sc.end_vals.resize(n, 0.0);
            sc.end_nonneg.clear();
            sc.end_nonneg.resize(n, 0.0);
        }
        for ti in 0..self.scratch.touched.len() {
            let sc = &mut *self.scratch;
            let s = sc.touched[ti] as usize;
            let meta = sc.slots[s];
            if meta.pruned {
                continue;
            }
            let needs_lo = meta.stale || meta.aff_version != aff_version;
            if !needs_lo && meta.unseen == 0 {
                continue;
            }
            let bounds = if split {
                // Hi chain: seen components exact, unseen bounded by the
                // member cursor (clamped exactly as `Interval::new(0, c)`
                // clamps its upper endpoint).
                let row = &sc.aprefs[s * n..s * n + n];
                for (m, &v) in row.iter().enumerate() {
                    let e = if v.is_nan() {
                        sc.pref_cursors[m].max(0.0)
                    } else {
                        v
                    };
                    sc.end_vals[m] = e;
                    sc.end_nonneg[m] = e.max(0.0);
                }
                let hi = self
                    .scorer
                    .score_end_split(&sc.end_vals, &sc.end_nonneg, &sc.aff_hi_mat);
                let lo = if needs_lo {
                    let row = &sc.aprefs[s * n..s * n + n];
                    for (m, &v) in row.iter().enumerate() {
                        let e = if v.is_nan() { 0.0 } else { v };
                        sc.end_vals[m] = e;
                        sc.end_nonneg[m] = e.max(0.0);
                    }
                    self.scorer
                        .score_end_split(&sc.end_vals, &sc.end_nonneg, &sc.aff_lo_mat)
                } else {
                    meta.bounds.lo
                };
                Interval::new(lo, hi)
            } else {
                sc.aprefs_iv.clear();
                for m in 0..n {
                    let v = sc.aprefs[s * n + m];
                    sc.aprefs_iv.push(if v.is_nan() {
                        Interval::new(0.0, sc.pref_cursors[m])
                    } else {
                        Interval::exact(v)
                    });
                }
                self.scorer.score_interval_scratch(
                    &sc.aprefs_iv,
                    &sc.pair_affs,
                    &sc.pair_index,
                    &mut sc.prefs_iv,
                )
            };
            let meta = &mut sc.slots[s];
            meta.bounds = bounds;
            meta.stale = false;
            meta.aff_version = aff_version;
        }
    }

    /// `ComputeTh({E})`: the best score any **unseen** item could have —
    /// all apref components at their cursors, affinities at their current
    /// envelopes. `None` once any preference list is exhausted: every
    /// candidate item appears in every preference list, so exhausting one
    /// list means every item has been encountered and no unseen item
    /// remains. Call only after [`Kernel::refresh_bounds`] (which
    /// refreshes the cursors and pair envelopes this reads).
    fn threshold(&mut self) -> Option<f64> {
        let n = self.n;
        let any_exhausted =
            (0..n).any(|m| self.scratch.positions[m] >= self.inputs.pref_lists[m].len());
        if any_exhausted {
            return None;
        }
        let sc = &mut *self.scratch;
        sc.aprefs_iv.clear();
        for m in 0..n {
            sc.aprefs_iv.push(Interval::new(0.0, sc.pref_cursors[m]));
        }
        Some(
            self.scorer
                .score_interval_scratch(
                    &sc.aprefs_iv,
                    &sc.pair_affs,
                    &sc.pair_index,
                    &mut sc.prefs_iv,
                )
                .hi,
        )
    }

    /// Fill the bounded heap with the k best live `(lb, id)` entries and
    /// return the k-th largest lower bound (call with `live_count ≥ k`).
    fn kth_lower_bound(&mut self, k: usize) -> f64 {
        let sc = &mut *self.scratch;
        sc.heap.clear();
        for ti in 0..sc.touched.len() {
            let s = sc.touched[ti] as usize;
            let meta = &sc.slots[s];
            if !meta.pruned {
                heap_push_bounded(&mut sc.heap, k, (meta.bounds.lo, meta.id));
            }
        }
        debug_assert_eq!(sc.heap.len(), k, "call with at least k live items");
        sc.heap[0].0
    }

    /// The buffer condition's pruning pass: every live item outside the
    /// current top-k whose UB cannot reach the k-th LB is dropped.
    /// Pruned slots are compacted out of the touched list afterwards
    /// (the list's order carries no semantics — every consumer's result
    /// is order-independent — it only bounds later passes).
    fn prune_below(&mut self, kth_lb: f64) {
        self.check_stamp += 1;
        let stamp = self.check_stamp;
        let sc = &mut *self.scratch;
        for i in 0..sc.heap.len() {
            let (_, id) = sc.heap[i];
            let s = sc.slot_of[id as usize] as usize;
            sc.slots[s].topk_stamp = stamp;
        }
        let mut any_pruned = false;
        for ti in 0..sc.touched.len() {
            let s = sc.touched[ti] as usize;
            let meta = &mut sc.slots[s];
            if meta.pruned || meta.topk_stamp == stamp {
                continue;
            }
            if meta.bounds.hi <= kth_lb + 1e-12 {
                meta.pruned = true;
                any_pruned = true;
                self.live_count -= 1;
                self.pruned_count += 1;
            }
        }
        if any_pruned {
            let slots = &sc.slots;
            sc.touched.retain(|&s| !slots[s as usize].pruned);
        }
    }

    /// Rank the live items by `(LB descending, id ascending)`, truncate
    /// to `k`, and assemble the result.
    fn finish(self, k: usize, sweeps: u64, stop_reason: StopReason) -> TopKResult {
        let sc = self.scratch;
        sc.ranked.clear();
        for &s in &sc.touched {
            let meta = &sc.slots[s as usize];
            if !meta.pruned {
                sc.ranked.push((meta.id, meta.bounds));
            }
        }
        sc.ranked.sort_by(|a, b| {
            b.1.lo
                .partial_cmp(&a.1.lo)
                .expect("finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        sc.ranked.truncate(k);
        TopKResult {
            items: sc
                .ranked
                .iter()
                .map(|&(id, iv)| TopKItem {
                    item: ItemId(id),
                    lb: iv.lo,
                    ub: iv.hi,
                })
                .collect(),
            stats: self.stats,
            sweeps,
            stop_reason,
        }
    }
}

/// Run GRECA over prepared inputs.
///
/// `affinity` must be the same view the inputs were built from;
/// `consensus` and `normalize_rpref` must match whatever scalar scoring
/// the caller compares against (see [`crate::naive::naive_topk`]).
///
/// Every preference list must rank the same itemset (§2.4 poses the
/// problem over one shared itemset `I`; [`MaterializedInputs::build`]
/// and the warm path both guarantee it) — a hand-assembled
/// [`GrecaInputs`] violating this panics rather than mis-attributing
/// components. The kernel's id→slot table is direct-indexed, so peak
/// memory is `O(max raw item id)` — the same layout contract as
/// [`crate::substrate::Substrate`]'s dense item map; remap pathologically
/// sparse id spaces before building lists.
///
/// Allocates a fresh [`GrecaScratch`] internally; hot serving paths use
/// [`greca_topk_with`] to recycle one.
///
/// [`MaterializedInputs::build`]: crate::lists::MaterializedInputs::build
pub fn greca_topk(
    inputs: &GrecaInputs<'_>,
    affinity: &greca_affinity::GroupAffinity,
    consensus: ConsensusFunction,
    normalize_rpref: bool,
    config: GrecaConfig,
) -> TopKResult {
    greca_topk_with(
        inputs,
        affinity,
        consensus,
        normalize_rpref,
        config,
        &mut GrecaScratch::new(),
    )
}

/// Run GRECA over prepared inputs, recycling a caller-owned
/// [`GrecaScratch`] — the allocation-free serving path. Results are
/// bit-identical to [`greca_topk`] regardless of what the scratch was
/// previously used for (every buffer is re-initialized per run).
pub fn greca_topk_with(
    inputs: &GrecaInputs<'_>,
    affinity: &greca_affinity::GroupAffinity,
    consensus: ConsensusFunction,
    normalize_rpref: bool,
    config: GrecaConfig,
    scratch: &mut GrecaScratch,
) -> TopKResult {
    assert!(config.k > 0, "k must be positive");
    assert_eq!(
        affinity.num_pairs(),
        inputs.num_pairs,
        "affinity view must match the inputs"
    );
    let scorer = BoundScorer::new(affinity, consensus, normalize_rpref);
    let mut kernel = Kernel::new(inputs, scorer, scratch);
    let k = config.k.min(inputs.num_items.max(1));
    let mut sweeps: u64 = 0;
    let mut since_check: u64 = 0;
    let mut stop_reason = StopReason::Exhausted;

    loop {
        let read_any = kernel.sweep();
        if !read_any {
            break;
        }
        sweeps += 1;
        since_check += 1;
        let check_now = match config.check_interval {
            CheckInterval::EverySweep => true,
            CheckInterval::Sweeps(n) => since_check >= n as u64,
            CheckInterval::Adaptive => {
                let target = (kernel.live_count as u64 / 128).clamp(1, 32);
                since_check >= target
            }
        };
        if !check_now || matches!(config.stopping, StoppingRule::Exhaustive) {
            continue;
        }
        since_check = 0;
        kernel.refresh_bounds();
        if kernel.live_count < k {
            continue;
        }
        // k-th largest lower bound among live items, via the bounded
        // heap (the heap then also names the top-k for the prune pass).
        let kth_lb = kernel.kth_lower_bound(k);
        let threshold = kernel.threshold();
        let threshold_ok = threshold.is_none_or(|t| t <= kth_lb + 1e-12);

        match config.stopping {
            StoppingRule::Greca => {
                // Buffer condition: every non-top-k item's UB is below the
                // k-th LB → prune it.
                if kernel.live_count > k {
                    kernel.prune_below(kth_lb);
                }
                // Terminate when only k candidates remain and no unseen
                // item can beat them. (Theorem 1: for monotone consensus
                // functions the buffer condition already implies the
                // threshold condition; we verify it anyway because the
                // interval bounds for disagreement functions are sound
                // but not covered by the theorem's premise.)
                if kernel.live_count == k && threshold_ok {
                    stop_reason = if kernel.pruned_count == 0 {
                        StopReason::Threshold
                    } else {
                        StopReason::Buffer
                    };
                    break;
                }
            }
            StoppingRule::ThresholdOnly => {
                if kernel.live_count == k && threshold_ok {
                    stop_reason = StopReason::Threshold;
                    break;
                }
            }
            StoppingRule::Exhaustive => unreachable!("handled above"),
        }
    }

    if matches!(stop_reason, StopReason::Exhausted) {
        // Everything read: bounds are exact.
        kernel.refresh_bounds();
    }
    let _consensus = crate::obs::phase(crate::obs::Phase::Consensus);
    kernel.finish(k, sweeps, stop_reason)
}
