//! GRECA — Algorithm 1 of the paper.
//!
//! An NRA-style top-k computation making **sequential accesses only**,
//! round-robin over the preference and affinity lists, maintaining an
//! item buffer of `[LB, UB]` envelopes, a global threshold for unseen
//! items, and terminating via either
//!
//! * the **threshold condition** — `Sc_th ≤ kth LB` and the buffer holds
//!   exactly `k` items (lines 16–19), or
//! * the **buffer condition** — the paper's novelty: the buffer holds
//!   `k' > k` items and the `k`-th LB is no smaller than the UB of each
//!   of the remaining `k' − k` items, which are then pruned (lines
//!   21–23; Theorem 1 shows this implies the threshold condition for the
//!   monotone consensus functions).
//!
//! Returned is the top-`k` **itemset** — the ranking inside it may be a
//! partial order, exactly as §3.1 describes.

use crate::access::AccessStats;
use crate::interval::Interval;
use crate::lists::{GrecaInputs, ListKind, ListView};
use crate::score::BoundScorer;
use greca_consensus::ConsensusFunction;
use greca_dataset::ItemId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Early-termination policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StoppingRule {
    /// Full GRECA: buffer condition with inter-item pruning, plus the
    /// (cheap) threshold verification. The default.
    #[default]
    Greca,
    /// Traditional threshold-style stop only: terminate when the
    /// threshold drops below the k-th lower bound **and** the buffer
    /// holds exactly `k` items; no inter-item pruning. This is the
    /// baseline GRECA's buffer condition improves upon (§3.2).
    ThresholdOnly,
    /// Never stop early; scan every list to the end.
    Exhaustive,
}

/// Why a run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The buffer condition fired (k'−k items pruned away).
    Buffer,
    /// The threshold condition fired with exactly k buffered items.
    Threshold,
    /// All lists were scanned to exhaustion.
    Exhausted,
}

/// How often the (O(|buffer|)) bound-refresh and stopping checks run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckInterval {
    /// After every full round-robin sweep (most faithful to Algorithm 1).
    EverySweep,
    /// After every `n` sweeps.
    Sweeps(u32),
    /// Adaptive: stretches the interval as the buffer grows (bounded
    /// staleness, much faster on large inputs). Never affects
    /// correctness, only how promptly a stopping condition is noticed.
    Adaptive,
}

/// GRECA run configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrecaConfig {
    /// Result size `k`.
    pub k: usize,
    /// Early-termination policy.
    pub stopping: StoppingRule,
    /// Stopping-check cadence.
    pub check_interval: CheckInterval,
}

impl Default for GrecaConfig {
    /// The paper's default `k = 10` with the standard stopping rule.
    fn default() -> Self {
        GrecaConfig::top(10)
    }
}

impl GrecaConfig {
    /// Default configuration for a given `k`.
    pub fn top(k: usize) -> Self {
        GrecaConfig {
            k,
            stopping: StoppingRule::Greca,
            check_interval: CheckInterval::EverySweep,
        }
    }

    /// Use the given stopping rule.
    pub fn stopping(mut self, rule: StoppingRule) -> Self {
        self.stopping = rule;
        self
    }

    /// Use the given check cadence.
    pub fn check_interval(mut self, ci: CheckInterval) -> Self {
        self.check_interval = ci;
        self
    }
}

/// One returned item with its score envelope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopKItem {
    /// The recommended item.
    pub item: ItemId,
    /// Lower bound of its consensus score at termination.
    pub lb: f64,
    /// Upper bound of its consensus score at termination.
    pub ub: f64,
}

impl TopKItem {
    /// Whether the envelope pinned the exact score.
    pub fn is_exact(&self) -> bool {
        (self.ub - self.lb).abs() <= 1e-9
    }
}

/// Result of a top-k run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopKResult {
    /// The top-k itemset, ordered by decreasing lower bound (a partial
    /// order: ties/overlapping envelopes are not further distinguished).
    pub items: Vec<TopKItem>,
    /// Access counters.
    pub stats: AccessStats,
    /// Number of full round-robin sweeps performed.
    pub sweeps: u64,
    /// What terminated the run.
    pub stop_reason: StopReason,
}

impl TopKResult {
    /// The returned item ids in result order.
    pub fn item_ids(&self) -> Vec<ItemId> {
        self.items.iter().map(|t| t.item).collect()
    }
}

#[derive(Debug, Clone)]
struct ItemState {
    aprefs: Vec<Option<f64>>,
    bounds: Interval,
}

/// Mutable scan state over one `GrecaInputs`.
///
/// Everything here is per-query: positions, cursor values and the item
/// buffer. The lists themselves are borrowed [`ListView`]s — no entry is
/// owned or copied by a run.
struct RunState<'a> {
    inputs: &'a GrecaInputs<'a>,
    scorer: BoundScorer<'a>,
    positions: Vec<usize>,
    cursors: Vec<f64>,
    /// Seen static component per pair.
    pair_static: Vec<Option<f64>>,
    /// Seen periodic components `[period][pair]`.
    pair_period: Vec<Vec<Option<f64>>>,
    /// Live candidate items.
    items: HashMap<u32, ItemState>,
    /// Items pruned by the buffer condition (ignored if re-encountered).
    pruned: std::collections::HashSet<u32>,
    /// Cached per-pair affinity envelopes (recomputed when stale).
    pair_affs: Vec<Interval>,
    stats: AccessStats,
    lists: Vec<ListView<'a>>,
}

impl<'a> RunState<'a> {
    fn new(inputs: &'a GrecaInputs<'a>, scorer: BoundScorer<'a>) -> Self {
        let lists: Vec<ListView<'a>> = inputs.all_lists().collect();
        let stats = AccessStats::new(inputs.total_entries());
        RunState {
            inputs,
            scorer,
            positions: vec![0; lists.len()],
            // Before any read a descending list is bounded by its first
            // entry; +∞ would also be sound but needlessly loose.
            cursors: lists
                .iter()
                .map(|l| l.first_score().unwrap_or(0.0))
                .collect(),
            pair_static: vec![None; inputs.num_pairs],
            pair_period: vec![vec![None; inputs.num_pairs]; inputs.period_lists.len()],
            items: HashMap::new(),
            pruned: std::collections::HashSet::new(),
            pair_affs: Vec::new(),
            stats,
            lists,
        }
    }

    /// One round-robin sweep: read one entry from every non-exhausted
    /// list. Returns false if nothing was read (all exhausted).
    fn sweep(&mut self) -> bool {
        let mut read_any = false;
        for li in 0..self.lists.len() {
            let pos = self.positions[li];
            let list = self.lists[li];
            if pos >= list.len() {
                continue;
            }
            let (id, score) = list.entry(pos);
            self.positions[li] = pos + 1;
            self.cursors[li] = score;
            self.stats.record_sa();
            read_any = true;
            match list.kind {
                ListKind::Preference { member } => {
                    if self.pruned.contains(&id) {
                        continue;
                    }
                    let n = self.inputs.num_members;
                    let entry = self.items.entry(id).or_insert_with(|| ItemState {
                        aprefs: vec![None; n],
                        bounds: Interval::new(f64::NEG_INFINITY, f64::INFINITY),
                    });
                    entry.aprefs[member as usize] = Some(score);
                }
                ListKind::StaticAffinity => {
                    self.pair_static[id as usize] = Some(score);
                }
                ListKind::PeriodicAffinity { period } => {
                    self.pair_period[period as usize][id as usize] = Some(score);
                }
            }
        }
        read_any
    }

    /// Cursor upper bound for the static component of a pair under the
    /// current layout: the max cursor over static lists that could still
    /// contain the pair. (With `Decomposed` layout a pair lives in
    /// exactly one list; with `Single` in the one list.)
    fn static_cursor(&self, pair: usize) -> f64 {
        let base = self.inputs.pref_lists.len();
        let mut best: f64 = 0.0;
        for (off, &list) in self.inputs.static_lists.iter().enumerate() {
            let li = base + off;
            if self.positions[li] < list.len() && list_contains_pair(list, pair) {
                best = best.max(self.cursors[li]);
            }
        }
        best
    }

    fn period_cursor(&self, period: usize, pair: usize) -> f64 {
        let mut best: f64 = 0.0;
        let mut li = self.inputs.pref_lists.len() + self.inputs.static_lists.len();
        for (p, lists) in self.inputs.period_lists.iter().enumerate() {
            for &list in lists {
                if p == period && self.positions[li] < list.len() && list_contains_pair(list, pair)
                {
                    best = best.max(self.cursors[li]);
                }
                li += 1;
            }
        }
        best
    }

    /// Refresh the cached pair-affinity envelopes from seen components
    /// and cursors.
    fn refresh_pair_affs(&mut self) {
        let n_pairs = self.inputs.num_pairs;
        let mode_static = !self.inputs.static_lists.is_empty();
        let n_periods = self.inputs.period_lists.len();
        let mut out = Vec::with_capacity(n_pairs);
        for pair in 0..n_pairs {
            let s_iv = match self.pair_static[pair] {
                Some(v) => Interval::exact(v),
                // Affinity-agnostic modes have no static lists; the fold
                // ignores the static argument then.
                None if !mode_static => Interval::exact(0.0),
                None => Interval::new(0.0, self.static_cursor(pair)),
            };
            let comps: Vec<Interval> = (0..n_periods)
                .map(|p| match self.pair_period[p][pair] {
                    Some(v) => Interval::exact(v),
                    None => Interval::new(0.0, self.period_cursor(p, pair)),
                })
                .collect();
            out.push(self.scorer.pair_affinity_interval(s_iv, &comps));
        }
        self.pair_affs = out;
    }

    /// Per-member apref cursor (max over that member's preference list).
    fn pref_cursor(&self, member: usize) -> f64 {
        let list = self.inputs.pref_lists.get(member).expect("member list");
        if self.positions[member] >= list.len() {
            // Exhausted: every item was seen in this list; any item still
            // lacking this component does not exist. Use the last value
            // (sound for the virtual unseen item of the threshold).
            list.last_score().unwrap_or(0.0)
        } else {
            self.cursors[member]
        }
    }

    /// Recompute every live item's `[LB, UB]`.
    fn refresh_bounds(&mut self) {
        self.refresh_pair_affs();
        let n = self.inputs.num_members;
        let cursors: Vec<f64> = (0..n).map(|m| self.pref_cursor(m)).collect();
        let pair_affs = std::mem::take(&mut self.pair_affs);
        for st in self.items.values_mut() {
            let aprefs: Vec<Interval> = st
                .aprefs
                .iter()
                .enumerate()
                .map(|(m, v)| match v {
                    Some(x) => Interval::exact(*x),
                    None => Interval::new(0.0, cursors[m]),
                })
                .collect();
            st.bounds = self.scorer.score_interval(&aprefs, &pair_affs);
        }
        self.pair_affs = pair_affs;
    }

    /// `ComputeTh({E})`: the best score any **unseen** item could have —
    /// all apref components at their cursors, affinities at their current
    /// envelopes. `None` once any preference list is exhausted: every
    /// candidate item appears in every preference list, so exhausting one
    /// list means every item has been encountered and no unseen item
    /// remains.
    fn threshold(&self) -> Option<f64> {
        let n = self.inputs.num_members;
        let any_exhausted = (0..n).any(|m| self.positions[m] >= self.inputs.pref_lists[m].len());
        if any_exhausted {
            return None;
        }
        let aprefs: Vec<Interval> = (0..n)
            .map(|m| Interval::new(0.0, self.pref_cursor(m)))
            .collect();
        Some(self.scorer.score_interval(&aprefs, &self.pair_affs).hi)
    }
}

fn list_contains_pair(list: ListView<'_>, pair: usize) -> bool {
    // Affinity lists are tiny (≤ n−1 entries); a linear scan is cheaper
    // than maintaining a side index.
    list.contains_id(pair as u32)
}

/// Run GRECA over prepared inputs.
///
/// `affinity` must be the same view the inputs were built from;
/// `consensus` and `normalize_rpref` must match whatever scalar scoring
/// the caller compares against (see [`crate::naive::naive_topk`]).
pub fn greca_topk(
    inputs: &GrecaInputs<'_>,
    affinity: &greca_affinity::GroupAffinity,
    consensus: ConsensusFunction,
    normalize_rpref: bool,
    config: GrecaConfig,
) -> TopKResult {
    assert!(config.k > 0, "k must be positive");
    assert_eq!(
        affinity.num_pairs(),
        inputs.num_pairs,
        "affinity view must match the inputs"
    );
    let scorer = BoundScorer::new(affinity, consensus, normalize_rpref);
    let mut state = RunState::new(inputs, scorer);
    let k = config.k.min(inputs.num_items.max(1));
    let mut sweeps: u64 = 0;
    let mut since_check: u64 = 0;
    let mut stop_reason = StopReason::Exhausted;

    loop {
        let read_any = state.sweep();
        if !read_any {
            break;
        }
        sweeps += 1;
        since_check += 1;
        let check_now = match config.check_interval {
            CheckInterval::EverySweep => true,
            CheckInterval::Sweeps(n) => since_check >= n as u64,
            CheckInterval::Adaptive => {
                let target = (state.items.len() as u64 / 128).clamp(1, 32);
                since_check >= target
            }
        };
        if !check_now || matches!(config.stopping, StoppingRule::Exhaustive) {
            continue;
        }
        since_check = 0;
        state.refresh_bounds();
        if state.items.len() < k {
            continue;
        }
        // k-th largest lower bound among live items.
        let mut lbs: Vec<f64> = state.items.values().map(|s| s.bounds.lo).collect();
        lbs.sort_by(|a, b| b.partial_cmp(a).expect("finite bounds"));
        let kth_lb = lbs[k - 1];
        let threshold = state.threshold();
        let threshold_ok = threshold.is_none_or(|t| t <= kth_lb + 1e-12);

        match config.stopping {
            StoppingRule::Greca => {
                // Buffer condition: every non-top-k item's UB is below the
                // k-th LB → prune it.
                let before = state.items.len();
                if before > k {
                    // Identify the top-k item ids by LB (ties by id).
                    let mut ranked: Vec<(u32, f64)> = state
                        .items
                        .iter()
                        .map(|(&id, s)| (id, s.bounds.lo))
                        .collect();
                    ranked.sort_by(|a, b| {
                        b.1.partial_cmp(&a.1)
                            .expect("finite")
                            .then_with(|| a.0.cmp(&b.0))
                    });
                    let topk: std::collections::HashSet<u32> =
                        ranked[..k].iter().map(|&(id, _)| id).collect();
                    let pruned: Vec<u32> = state
                        .items
                        .iter()
                        .filter(|(&id, s)| !topk.contains(&id) && s.bounds.hi <= kth_lb + 1e-12)
                        .map(|(&id, _)| id)
                        .collect();
                    for id in pruned {
                        state.items.remove(&id);
                        state.pruned.insert(id);
                    }
                }
                // Terminate when only k candidates remain and no unseen
                // item can beat them. (Theorem 1: for monotone consensus
                // functions the buffer condition already implies the
                // threshold condition; we verify it anyway because the
                // interval bounds for disagreement functions are sound
                // but not covered by the theorem's premise.)
                if state.items.len() == k && threshold_ok {
                    stop_reason = if state.pruned.is_empty() {
                        StopReason::Threshold
                    } else {
                        StopReason::Buffer
                    };
                    break;
                }
            }
            StoppingRule::ThresholdOnly => {
                if state.items.len() == k && threshold_ok {
                    stop_reason = StopReason::Threshold;
                    break;
                }
            }
            StoppingRule::Exhaustive => unreachable!("handled above"),
        }
    }

    if matches!(stop_reason, StopReason::Exhausted) {
        // Everything read: bounds are exact.
        state.refresh_bounds();
    }
    let mut ranked: Vec<(u32, Interval)> =
        state.items.iter().map(|(&id, s)| (id, s.bounds)).collect();
    ranked.sort_by(|a, b| {
        b.1.lo
            .partial_cmp(&a.1.lo)
            .expect("finite")
            .then_with(|| a.0.cmp(&b.0))
    });
    ranked.truncate(k);
    TopKResult {
        items: ranked
            .into_iter()
            .map(|(id, iv)| TopKItem {
                item: ItemId(id),
                lb: iv.lo,
                ub: iv.hi,
            })
            .collect(),
        stats: state.stats,
        sweeps,
        stop_reason,
    }
}
