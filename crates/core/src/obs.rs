//! End-to-end tracing and the flight recorder: cost attribution for
//! every query and every publish, `std`-only and always on.
//!
//! The paper's central claim is a *cost* argument — GRECA wins because
//! it does fewer sorted and random accesses — and this module makes
//! that accounting visible live, per request, instead of only in
//! offline bench bins. Three pieces:
//!
//! * **Spans** — one [`SpanRecord`] per traced operation (a query, an
//!   ingest, an epoch publish, a subscription-pump pass), carrying a
//!   64-bit trace id, per-[`Phase`] wall-clock nanoseconds
//!   (admit-wait, cache lookup, prepare/resolve, kernel sweeps,
//!   consensus resolution, serialize, and the publish pipeline's
//!   stages), and the paper's `AccessStats` SA/RA counts. A span is
//!   *thread-local while open*: the serving layer opens it
//!   ([`span`]), instrumented core code ([`phase`], [`note_access`])
//!   accumulates into whatever span is active on the current thread
//!   with no signature changes anywhere, and the guard's drop seals
//!   the record. Nested opens are no-ops — a `publish` inside a
//!   served `ingest` attributes its stages to the ingest span.
//! * **The flight recorder** — fixed-size per-thread ring buffers of
//!   the most recent sealed records, written lock-free through a
//!   per-slot seqlock so a reader can snapshot concurrently and
//!   *never observe a torn record* (unit-tested under contention).
//!   Always on; the `trace` serve verb dumps it with filters.
//! * **The slow-query log** — a small bounded log of full records
//!   whose total latency crossed a configurable threshold, so the one
//!   query that took 80 ms at 3 a.m. is still attributable at 9 a.m.
//!
//! Everything funnels through one process-wide [`FlightRecorder`]
//! ([`recorder`]). Overhead with tracing enabled is a handful of
//! `Instant::now` calls plus ~21 relaxed atomic stores per span —
//! gated ≤ 5% on warm-query p50 by the `obs_overhead` bench — and a
//! single atomic load per call site when disabled
//! ([`set_enabled`], or `GRECA_OBS=off` in the environment).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime};

/// The phase taxonomy: every nanosecond a span records is attributed
/// to exactly one of these. Query-side phases first, then the publish
/// pipeline's stages — one span uses whichever subset applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Time spent queued behind admission control before a worker
    /// picked the request up.
    Admit = 0,
    /// Result-cache bookkeeping: lookup, single-flight coalescing
    /// waits, and the post-compute install (never the compute itself).
    Cache = 1,
    /// Query preparation: itemset resolution, affinity assembly, and
    /// sorted-list selection/materialization (shared-arena resolution
    /// included).
    Prepare = 2,
    /// Kernel execution — the GRECA/TA/naive sweeps themselves.
    Kernel = 3,
    /// Final consensus resolution: scoring/ranking the buffered
    /// candidates into the returned top-k (the kernel's finish step).
    Consensus = 4,
    /// Response encoding onto the wire.
    Serialize = 5,
    /// WAL appends (batch records and publish commit markers),
    /// including fsync per the log's policy.
    WalAppend = 6,
    /// Publish staging: draining the store, deriving the post matrix,
    /// and computing the dirty set.
    Stage = 7,
    /// Substrate rebuild (incremental dirty segments or wholesale).
    Rebuild = 8,
    /// The epoch swap itself: installing the new state behind the
    /// current-epoch lock.
    Swap = 9,
    /// Cache-survival work in publish hooks: walking resident entries
    /// against the dirty set, keeping or dropping each.
    Survival = 10,
    /// Subscription-pump bookkeeping (delta coalescing, footprint
    /// checks, push writes) beyond the re-run kernels themselves.
    Pump = 11,
}

/// Number of phases a span distinguishes.
pub const NUM_PHASES: usize = 12;

impl Phase {
    /// All phases, index-ordered (for exposition loops).
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Admit,
        Phase::Cache,
        Phase::Prepare,
        Phase::Kernel,
        Phase::Consensus,
        Phase::Serialize,
        Phase::WalAppend,
        Phase::Stage,
        Phase::Rebuild,
        Phase::Swap,
        Phase::Survival,
        Phase::Pump,
    ];

    /// Stable snake_case label (wire + exposition form).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Admit => "admit",
            Phase::Cache => "cache",
            Phase::Prepare => "prepare",
            Phase::Kernel => "kernel",
            Phase::Consensus => "consensus",
            Phase::Serialize => "serialize",
            Phase::WalAppend => "wal_append",
            Phase::Stage => "stage",
            Phase::Rebuild => "rebuild",
            Phase::Swap => "swap",
            Phase::Survival => "survival",
            Phase::Pump => "pump",
        }
    }
}

/// What kind of operation a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// One served `query` request.
    Query = 0,
    /// One served `subscribe` baseline run.
    Subscribe = 1,
    /// One served `ingest` request (its publish's stages fold in).
    Ingest = 2,
    /// A standalone epoch publish (no serving span active).
    Publish = 3,
    /// One subscription-pump pass over a coalesced publish delta.
    Pump = 4,
    /// One planned batch wave (`run_batch_with` on the calling thread).
    Batch = 5,
    /// Anything else.
    Other = 6,
}

/// Number of span kinds.
pub const NUM_KINDS: usize = 7;

impl SpanKind {
    /// Every kind, in index order (exposition iteration).
    pub const ALL: [SpanKind; NUM_KINDS] = [
        SpanKind::Query,
        SpanKind::Subscribe,
        SpanKind::Ingest,
        SpanKind::Publish,
        SpanKind::Pump,
        SpanKind::Batch,
        SpanKind::Other,
    ];

    /// Stable label (wire + exposition form).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::Subscribe => "subscribe",
            SpanKind::Ingest => "ingest",
            SpanKind::Publish => "publish",
            SpanKind::Pump => "pump",
            SpanKind::Batch => "batch",
            SpanKind::Other => "other",
        }
    }

    /// Parse a [`SpanKind::label`] back (filter parsing).
    pub fn from_label(s: &str) -> Option<SpanKind> {
        Some(match s {
            "query" => SpanKind::Query,
            "subscribe" => SpanKind::Subscribe,
            "ingest" => SpanKind::Ingest,
            "publish" => SpanKind::Publish,
            "pump" => SpanKind::Pump,
            "batch" => SpanKind::Batch,
            "other" => SpanKind::Other,
            _ => return None,
        })
    }

    fn from_code(code: u8) -> SpanKind {
        match code {
            0 => SpanKind::Query,
            1 => SpanKind::Subscribe,
            2 => SpanKind::Ingest,
            3 => SpanKind::Publish,
            4 => SpanKind::Pump,
            5 => SpanKind::Batch,
            _ => SpanKind::Other,
        }
    }
}

/// The cache disposition a query span observed (mirrors the serving
/// layer's `hit`/`miss`/`coalesced`/`bypass` wire labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CacheNote {
    /// No cache involved (or not noted).
    None = 0,
    /// Served from a resident entry.
    Hit = 1,
    /// Computed and installed.
    Miss = 2,
    /// Waited on an identical in-flight computation.
    Coalesced = 3,
    /// Pinned behind the cache's epoch; computed without caching.
    Bypass = 4,
}

impl CacheNote {
    /// Stable label (`""` for [`CacheNote::None`]).
    pub fn label(self) -> &'static str {
        match self {
            CacheNote::None => "",
            CacheNote::Hit => "hit",
            CacheNote::Miss => "miss",
            CacheNote::Coalesced => "coalesced",
            CacheNote::Bypass => "bypass",
        }
    }

    fn from_code(code: u8) -> CacheNote {
        match code {
            1 => CacheNote::Hit,
            2 => CacheNote::Miss,
            3 => CacheNote::Coalesced,
            4 => CacheNote::Bypass,
            _ => CacheNote::None,
        }
    }
}

/// One sealed span: the full cost-attribution record of a traced
/// operation. Fixed-size and `Copy` so ring slots never allocate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// The 64-bit trace id (client-supplied or server-assigned);
    /// echoed on the wire so callers can retrieve this record.
    pub trace: u64,
    /// Process-unique span sequence number (total order of sealing).
    pub span: u64,
    /// What kind of operation this was.
    pub kind: SpanKind,
    /// Whether the operation completed successfully (`false` also for
    /// spans sealed by unwinding).
    pub ok: bool,
    /// The cache disposition, when a result cache was consulted.
    pub cache: CacheNote,
    /// The epoch the operation served from / published.
    pub epoch: u64,
    /// Sorted accesses charged to this span's kernel runs.
    pub sa: u64,
    /// Random accesses charged to this span's kernel runs.
    pub ra: u64,
    /// End-to-end wall clock, nanoseconds.
    pub total_ns: u64,
    /// Wall-clock seal time, milliseconds since the Unix epoch (for
    /// the slow-query log; spans order by `span`, not by this).
    pub unix_ms: u64,
    /// Per-phase attribution, nanoseconds, indexed by [`Phase`].
    pub phase_ns: [u64; NUM_PHASES],
}

/// Words per encoded record (the seqlock slot payload).
const WORDS: usize = 9 + NUM_PHASES;

impl SpanRecord {
    /// Nanoseconds attributed to `phase`.
    pub fn phase(&self, phase: Phase) -> u64 {
        self.phase_ns[phase as usize]
    }

    fn encode(&self) -> [u64; WORDS] {
        let mut w = [0u64; WORDS];
        w[0] = self.trace;
        w[1] = self.span;
        w[2] = u64::from(self.kind as u8)
            | (u64::from(self.cache as u8) << 8)
            | (u64::from(self.ok) << 16);
        w[3] = self.epoch;
        w[4] = self.sa;
        w[5] = self.ra;
        w[6] = self.total_ns;
        w[7] = self.unix_ms;
        w[8] = 0; // reserved
        w[9..].copy_from_slice(&self.phase_ns);
        w
    }

    fn decode(w: &[u64; WORDS]) -> SpanRecord {
        let mut phase_ns = [0u64; NUM_PHASES];
        phase_ns.copy_from_slice(&w[9..]);
        SpanRecord {
            trace: w[0],
            span: w[1],
            kind: SpanKind::from_code((w[2] & 0xff) as u8),
            cache: CacheNote::from_code(((w[2] >> 8) & 0xff) as u8),
            ok: (w[2] >> 16) & 1 == 1,
            epoch: w[3],
            sa: w[4],
            ra: w[5],
            total_ns: w[6],
            unix_ms: w[7],
            phase_ns,
        }
    }
}

/// Slots per per-thread ring. 256 records × 21 words ≈ 43 KiB per
/// thread that ever sealed a span (rings are pooled and reused across
/// short-lived connection threads).
const RING_SLOTS: usize = 256;

/// One per-thread ring of recent records. Single writer (the owning
/// thread), any number of concurrent snapshot readers; each slot is a
/// seqlock — sequence odd while the writer is mid-slot, bumped even
/// when the record is whole — so a reader either gets a consistent
/// record or skips the slot, never a torn one.
struct Ring {
    /// Records ever pushed (the write cursor; slot = head % RING_SLOTS).
    head: AtomicU64,
    slots: Box<[Slot]>,
}

struct Slot {
    /// 0 = never written; odd = write in progress; even ≥ 2 = whole.
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Ring {
    fn new() -> Ring {
        Ring {
            head: AtomicU64::new(0),
            slots: (0..RING_SLOTS)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
        }
    }

    /// Push one record. Must only be called by the ring's owning
    /// thread (enforced by the thread-local lease in [`seal`]).
    fn push(&self, record: &SpanRecord) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head % RING_SLOTS as u64) as usize];
        let seq = slot.seq.load(Ordering::Relaxed);
        // Mark the slot mid-write (odd) before touching the payload…
        slot.seq.store(seq | 1, Ordering::Release);
        fence(Ordering::Release);
        for (dst, src) in slot.words.iter().zip(record.encode()) {
            dst.store(src, Ordering::Relaxed);
        }
        fence(Ordering::Release);
        // …and whole (next even value) after.
        slot.seq.store((seq | 1) + 1, Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Append every whole record to `out` (tears and never-written
    /// slots are skipped; a slot overwritten mid-read is retried a few
    /// times, then skipped).
    fn snapshot_into(&self, out: &mut Vec<SpanRecord>) {
        for slot in self.slots.iter() {
            for _attempt in 0..4 {
                let before = slot.seq.load(Ordering::Acquire);
                if before == 0 || before & 1 == 1 {
                    // Empty, or mid-write: try again (the writer bumps
                    // it even within nanoseconds) — give up after the
                    // attempts cap.
                    if before == 0 {
                        break;
                    }
                    continue;
                }
                let mut words = [0u64; WORDS];
                for (dst, src) in words.iter_mut().zip(slot.words.iter()) {
                    *dst = src.load(Ordering::Relaxed);
                }
                fence(Ordering::Acquire);
                let after = slot.seq.load(Ordering::Acquire);
                if before == after {
                    out.push(SpanRecord::decode(&words));
                    break;
                }
            }
        }
    }
}

/// A filter for [`FlightRecorder::snapshot`]. Default: everything,
/// newest 128.
#[derive(Debug, Clone, Default)]
pub struct TraceFilter {
    /// Keep only records with this trace id.
    pub trace: Option<u64>,
    /// Keep only records of this kind.
    pub kind: Option<SpanKind>,
    /// Keep only records at least this slow (total, microseconds).
    pub min_total_us: Option<u64>,
    /// Newest records kept after filtering (0 = default 128).
    pub limit: usize,
}

impl TraceFilter {
    /// Whether `r` passes every set predicate (`limit` is applied by
    /// the caller — it is a keep-newest bound, not a per-record test).
    pub fn matches(&self, r: &SpanRecord) -> bool {
        self.trace.is_none_or(|t| r.trace == t)
            && self.kind.is_none_or(|k| r.kind == k)
            && self
                .min_total_us
                .is_none_or(|us| r.total_ns >= us.saturating_mul(1_000))
    }
}

/// Aggregate series derived from sealed spans (the span-side input to
/// the Prometheus exposition).
#[derive(Debug, Clone, Default)]
pub struct ObsTotals {
    /// Spans sealed, by [`SpanKind`] index.
    pub spans: [u64; NUM_KINDS],
    /// Nanoseconds attributed, by [`Phase`] index, across all spans.
    pub phase_ns: [u64; NUM_PHASES],
    /// Sorted accesses across all spans (the paper's SA counter, live).
    pub sa: u64,
    /// Random accesses across all spans.
    pub ra: u64,
    /// Spans that crossed the slow threshold.
    pub slow: u64,
}

/// Bounded slow-query log length.
const SLOW_LOG_CAP: usize = 256;

/// The process-wide recorder: per-thread rings, the slow-query log,
/// and aggregate totals. Obtain it with [`recorder`].
pub struct FlightRecorder {
    rings: Mutex<Vec<Arc<Ring>>>,
    /// Indices of rings whose owning thread exited, available for
    /// reuse (their records stay snapshottable meanwhile).
    free: Mutex<Vec<usize>>,
    next_span: AtomicU64,
    next_trace: AtomicU64,
    trace_seed: u64,
    enabled: AtomicBool,
    slow: Mutex<VecDeque<SpanRecord>>,
    /// Threshold in microseconds; `u64::MAX` disables the slow log.
    slow_threshold_us: AtomicU64,
    spans: [AtomicU64; NUM_KINDS],
    phase_ns: [AtomicU64; NUM_PHASES],
    sa: AtomicU64,
    ra: AtomicU64,
    slow_total: AtomicU64,
}

impl FlightRecorder {
    fn new() -> FlightRecorder {
        let enabled = !matches!(
            std::env::var("GRECA_OBS").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        );
        let seed = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        FlightRecorder {
            rings: Mutex::new(Vec::new()),
            free: Mutex::new(Vec::new()),
            next_span: AtomicU64::new(1),
            next_trace: AtomicU64::new(1),
            trace_seed: seed,
            enabled: AtomicBool::new(enabled),
            slow: Mutex::new(VecDeque::new()),
            slow_threshold_us: AtomicU64::new(u64::MAX),
            spans: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            sa: AtomicU64::new(0),
            ra: AtomicU64::new(0),
            slow_total: AtomicU64::new(0),
        }
    }

    /// Whether span recording is on (the process-wide switch).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// A fresh server-assigned trace id (never 0, never colliding
    /// within a process).
    pub fn next_trace_id(&self) -> u64 {
        let n = self.next_trace.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.trace_seed ^ n).max(1)
    }

    /// Set the slow-query threshold; spans slower than this are copied
    /// into the bounded slow log. [`Duration::MAX`] disables it.
    pub fn set_slow_threshold(&self, threshold: Duration) {
        let us = threshold.as_micros().min(u128::from(u64::MAX)) as u64;
        self.slow_threshold_us.store(us, Ordering::Relaxed);
    }

    /// The current slow-query threshold in microseconds
    /// (`u64::MAX` = disabled).
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us.load(Ordering::Relaxed)
    }

    /// Snapshot the rings under `filter`: whole records only, merged
    /// across threads, oldest → newest by seal order, trimmed to the
    /// filter's `limit` newest.
    pub fn snapshot(&self, filter: &TraceFilter) -> Vec<SpanRecord> {
        let rings: Vec<Arc<Ring>> = lock_ok(&self.rings).iter().cloned().collect();
        let mut records = Vec::new();
        for ring in rings {
            ring.snapshot_into(&mut records);
        }
        records.retain(|r| filter.matches(r));
        records.sort_unstable_by_key(|r| r.span);
        let limit = if filter.limit == 0 { 128 } else { filter.limit };
        if records.len() > limit {
            records.drain(..records.len() - limit);
        }
        records
    }

    /// The slow-query log, oldest → newest.
    pub fn slow_queries(&self) -> Vec<SpanRecord> {
        lock_ok(&self.slow).iter().copied().collect()
    }

    /// Aggregate totals across every span sealed so far.
    pub fn totals(&self) -> ObsTotals {
        ObsTotals {
            spans: std::array::from_fn(|i| self.spans[i].load(Ordering::Relaxed)),
            phase_ns: std::array::from_fn(|i| self.phase_ns[i].load(Ordering::Relaxed)),
            sa: self.sa.load(Ordering::Relaxed),
            ra: self.ra.load(Ordering::Relaxed),
            slow: self.slow_total.load(Ordering::Relaxed),
        }
    }

    /// Acquire a ring for the current thread: reuse a released one or
    /// register a new one.
    fn acquire_ring(&self) -> (Arc<Ring>, usize) {
        if let Some(index) = lock_ok(&self.free).pop() {
            let ring = Arc::clone(&lock_ok(&self.rings)[index]);
            return (ring, index);
        }
        let ring = Arc::new(Ring::new());
        let mut rings = lock_ok(&self.rings);
        rings.push(Arc::clone(&ring));
        (ring, rings.len() - 1)
    }

    fn release_ring(&self, index: usize) {
        lock_ok(&self.free).push(index);
    }

    fn seal(&self, record: &mut SpanRecord) {
        record.span = self.next_span.fetch_add(1, Ordering::Relaxed);
        record.unix_ms = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        RING.with(|lease| {
            let mut lease = lease.borrow_mut();
            let lease = lease.get_or_insert_with(|| {
                let (ring, index) = self.acquire_ring();
                RingLease { ring, index }
            });
            lease.ring.push(record);
        });
        self.spans[record.kind as usize].fetch_add(1, Ordering::Relaxed);
        for (total, ns) in self.phase_ns.iter().zip(record.phase_ns) {
            if ns > 0 {
                total.fetch_add(ns, Ordering::Relaxed);
            }
        }
        if record.sa > 0 {
            self.sa.fetch_add(record.sa, Ordering::Relaxed);
        }
        if record.ra > 0 {
            self.ra.fetch_add(record.ra, Ordering::Relaxed);
        }
        let threshold_us = self.slow_threshold_us.load(Ordering::Relaxed);
        if threshold_us != u64::MAX && record.total_ns >= threshold_us.saturating_mul(1_000) {
            self.slow_total.fetch_add(1, Ordering::Relaxed);
            let mut slow = lock_ok(&self.slow);
            if slow.len() >= SLOW_LOG_CAP {
                slow.pop_front();
            }
            slow.push_back(*record);
        }
    }
}

fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| {
        m.clear_poison();
        poisoned.into_inner()
    })
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-wide flight recorder.
pub fn recorder() -> &'static FlightRecorder {
    RECORDER.get_or_init(FlightRecorder::new)
}

/// Whether tracing is on. One relaxed atomic load — the only cost
/// every instrumented call site pays when tracing is off.
pub fn enabled() -> bool {
    recorder().is_enabled()
}

/// Turn span recording on or off process-wide (the programmatic form
/// of `GRECA_OBS=off`; the `obs_overhead` bench uses it to measure
/// its own overhead). Lineage accounting in `LiveEngine` is *not*
/// affected — that is part of `stats`, not of tracing.
pub fn set_enabled(on: bool) {
    recorder().enabled.store(on, Ordering::Relaxed);
}

/// A fresh server-assigned trace id.
pub fn next_trace_id() -> u64 {
    recorder().next_trace_id()
}

/// The span a thread is currently accumulating into.
struct ActiveSpan {
    trace: u64,
    kind: SpanKind,
    start: Instant,
    epoch: u64,
    sa: u64,
    ra: u64,
    cache: CacheNote,
    ok: bool,
    phase_ns: [u64; NUM_PHASES],
}

struct RingLease {
    ring: Arc<Ring>,
    index: usize,
}

impl Drop for RingLease {
    fn drop(&mut self) {
        // The thread is exiting: hand the ring back for reuse. Its
        // records stay registered (and snapshottable) meanwhile.
        if let Some(rec) = RECORDER.get() {
            rec.release_ring(self.index);
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveSpan>> = const { RefCell::new(None) };
    static RING: RefCell<Option<RingLease>> = const { RefCell::new(None) };
}

/// Open a span on the current thread. Returns a guard whose drop
/// seals the record into the flight recorder; call
/// [`SpanGuard::finish`] to seal explicitly and get the record back.
///
/// No-op (inactive guard) when tracing is disabled or the thread
/// already has an open span — nested operations attribute into the
/// enclosing span, which is exactly what a `publish` inside a served
/// `ingest` should do.
pub fn span(trace: u64, kind: SpanKind) -> SpanGuard {
    if !enabled() {
        return SpanGuard { owned: false };
    }
    let owned = ACTIVE.with(|active| {
        let mut active = active.borrow_mut();
        if active.is_some() {
            return false;
        }
        *active = Some(ActiveSpan {
            trace,
            kind,
            start: Instant::now(),
            epoch: 0,
            sa: 0,
            ra: 0,
            cache: CacheNote::None,
            ok: false,
            phase_ns: [0; NUM_PHASES],
        });
        true
    });
    SpanGuard { owned }
}

/// RAII handle for an open span — see [`span`].
#[must_use = "dropping immediately seals an empty span"]
pub struct SpanGuard {
    owned: bool,
}

impl SpanGuard {
    /// Whether this guard actually opened a span (false = tracing off
    /// or attributing into an enclosing span).
    pub fn active(&self) -> bool {
        self.owned
    }

    /// Seal the span now and return its record.
    pub fn finish(mut self) -> Option<SpanRecord> {
        if !self.owned {
            return None;
        }
        self.owned = false;
        seal_active()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.owned {
            // Sealed with whatever was noted; `ok` stays false unless
            // the owner noted success — an unwind thus records a
            // failed span rather than losing it.
            seal_active();
        }
    }
}

fn seal_active() -> Option<SpanRecord> {
    let span = ACTIVE.with(|active| active.borrow_mut().take())?;
    let mut record = SpanRecord {
        trace: span.trace,
        span: 0,
        kind: span.kind,
        ok: span.ok,
        cache: span.cache,
        epoch: span.epoch,
        sa: span.sa,
        ra: span.ra,
        total_ns: span.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
        unix_ms: 0,
        phase_ns: span.phase_ns,
    };
    recorder().seal(&mut record);
    Some(record)
}

/// Time a phase of the current thread's span: the returned timer adds
/// its elapsed wall clock to `phase` when dropped. Free (no clock
/// read) when no span is open.
pub fn phase(phase: Phase) -> PhaseTimer {
    let start = ACTIVE
        .with(|active| active.borrow().is_some())
        .then(Instant::now);
    PhaseTimer { phase, start }
}

/// Attribute `elapsed` to `phase` on the current thread's span (the
/// explicit form of [`phase`], for durations measured elsewhere —
/// e.g. admission wait measured from submit time).
pub fn add_phase(phase: Phase, elapsed: Duration) {
    ACTIVE.with(|active| {
        if let Some(span) = active.borrow_mut().as_mut() {
            span.phase_ns[phase as usize] = span.phase_ns[phase as usize]
                .saturating_add(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
        }
    });
}

/// See [`phase`].
pub struct PhaseTimer {
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            add_phase(self.phase, start.elapsed());
        }
    }
}

/// Note the serving/published epoch on the current span.
pub fn note_epoch(epoch: u64) {
    ACTIVE.with(|active| {
        if let Some(span) = active.borrow_mut().as_mut() {
            span.epoch = epoch;
        }
    });
}

/// Add kernel access counts (the paper's SA/RA) to the current span.
pub fn note_access(sa: u64, ra: u64) {
    ACTIVE.with(|active| {
        if let Some(span) = active.borrow_mut().as_mut() {
            span.sa = span.sa.saturating_add(sa);
            span.ra = span.ra.saturating_add(ra);
        }
    });
}

/// Note the cache disposition on the current span.
pub fn note_cache(note: CacheNote) {
    ACTIVE.with(|active| {
        if let Some(span) = active.borrow_mut().as_mut() {
            span.cache = note;
        }
    });
}

/// Mark the current span's outcome (spans default to `ok = false`, so
/// error paths and unwinds need no call).
pub fn note_ok(ok: bool) {
    ACTIVE.with(|active| {
        if let Some(span) = active.borrow_mut().as_mut() {
            span.ok = ok;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this module share process-wide recorder state (the
    /// enable switch, the slow threshold); every test serializes on
    /// this lock so a toggling test can't drop a sibling's spans.
    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        lock_ok(&LOCK)
    }

    /// Seal one synthetic span with distinctive fields.
    fn seal(trace: u64, kind: SpanKind, kernel_ns: u64, sa: u64) {
        let guard = span(trace, kind);
        assert!(guard.active());
        add_phase(Phase::Kernel, Duration::from_nanos(kernel_ns));
        note_access(sa, sa / 2);
        note_epoch(7);
        note_ok(true);
        let record = guard.finish().expect("owned span seals");
        assert_eq!(record.trace, trace);
        assert_eq!(record.phase(Phase::Kernel), kernel_ns);
    }

    #[test]
    fn span_lifecycle_records_phases_access_and_outcome() {
        let _exclusive = exclusive();
        let trace = next_trace_id();
        seal(trace, SpanKind::Query, 1234, 10);
        let records = recorder().snapshot(&TraceFilter {
            trace: Some(trace),
            ..TraceFilter::default()
        });
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(
            (r.kind, r.ok, r.epoch, r.sa, r.ra),
            (SpanKind::Query, true, 7, 10, 5)
        );
        assert_eq!(r.phase(Phase::Kernel), 1234);
        assert_eq!(r.phase(Phase::Admit), 0);
    }

    #[test]
    fn nested_spans_attribute_into_the_outer_one() {
        let _exclusive = exclusive();
        let trace = next_trace_id();
        let outer = span(trace, SpanKind::Ingest);
        assert!(outer.active());
        let inner = span(next_trace_id(), SpanKind::Publish);
        assert!(!inner.active(), "nested span must not open");
        add_phase(Phase::Rebuild, Duration::from_nanos(500));
        assert!(inner.finish().is_none());
        note_ok(true);
        let record = outer.finish().expect("outer owned");
        assert_eq!(record.phase(Phase::Rebuild), 500);
        assert_eq!(record.kind, SpanKind::Ingest);
    }

    #[test]
    fn dropped_guard_seals_a_failed_span() {
        let _exclusive = exclusive();
        let trace = next_trace_id();
        {
            let _guard = span(trace, SpanKind::Query);
            // No note_ok: simulate an error/unwind path.
        }
        let records = recorder().snapshot(&TraceFilter {
            trace: Some(trace),
            ..TraceFilter::default()
        });
        assert_eq!(records.len(), 1);
        assert!(!records[0].ok);
    }

    #[test]
    fn disabled_recording_is_a_no_op_and_reversible() {
        let _exclusive = exclusive();
        // Serialize against other tests that rely on the global switch:
        // this test owns the toggle for its duration.
        let trace = next_trace_id();
        set_enabled(false);
        let guard = span(trace, SpanKind::Query);
        assert!(!guard.active());
        drop(guard);
        set_enabled(true);
        let records = recorder().snapshot(&TraceFilter {
            trace: Some(trace),
            ..TraceFilter::default()
        });
        assert!(records.is_empty());
    }

    #[test]
    fn ring_wraparound_evicts_oldest_records_only() {
        let _exclusive = exclusive();
        // Overfill one thread's ring by 3×: only the newest RING_SLOTS
        // survive, in seal order, with nothing torn or duplicated.
        let trace = next_trace_id();
        let total = RING_SLOTS * 3;
        for i in 0..total {
            seal(trace, SpanKind::Batch, i as u64 + 1, 0);
        }
        let records = recorder().snapshot(&TraceFilter {
            trace: Some(trace),
            limit: total,
            ..TraceFilter::default()
        });
        assert_eq!(records.len(), RING_SLOTS);
        // Seal order is preserved and exactly the newest survive.
        let kernels: Vec<u64> = records.iter().map(|r| r.phase(Phase::Kernel)).collect();
        let expected: Vec<u64> = ((total - RING_SLOTS + 1)..=total)
            .map(|i| i as u64)
            .collect();
        assert_eq!(kernels, expected);
        for pair in records.windows(2) {
            assert!(pair[0].span < pair[1].span);
        }
    }

    #[test]
    fn concurrent_snapshots_never_observe_torn_records() {
        let _exclusive = exclusive();
        // One writer thread seals spans whose fields are all derived
        // from one counter; readers snapshot concurrently and verify
        // internal consistency of every record they see.
        let trace = next_trace_id();
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut i: u64 = 1;
                while !stop.load(Ordering::Relaxed) {
                    let guard = span(trace, SpanKind::Batch);
                    add_phase(Phase::Kernel, Duration::from_nanos(i));
                    add_phase(Phase::Prepare, Duration::from_nanos(2 * i));
                    note_access(3 * i, 4 * i);
                    note_epoch(5 * i);
                    note_ok(true);
                    drop(guard);
                    i += 1;
                }
            });
            for _ in 0..3 {
                scope.spawn(|| {
                    let filter = TraceFilter {
                        trace: Some(trace),
                        limit: usize::MAX / 2,
                        ..TraceFilter::default()
                    };
                    for _ in 0..200 {
                        for r in recorder().snapshot(&filter) {
                            let i = r.phase(Phase::Kernel);
                            assert!(i > 0, "kernel ns always set");
                            assert_eq!(r.phase(Phase::Prepare), 2 * i, "torn record: {r:?}");
                            assert_eq!(r.sa, 3 * i, "torn record: {r:?}");
                            assert_eq!(r.ra, 4 * i, "torn record: {r:?}");
                            assert_eq!(r.epoch, 5 * i, "torn record: {r:?}");
                        }
                    }
                });
            }
            // Give readers a moment against a live writer, then stop.
            std::thread::sleep(Duration::from_millis(50));
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn filters_select_by_kind_latency_and_limit() {
        let _exclusive = exclusive();
        let trace = next_trace_id();
        seal(trace, SpanKind::Query, 10, 0);
        seal(trace, SpanKind::Ingest, 10, 0);
        {
            // A genuinely slow span (total ≥ 1 ms of wall clock).
            let guard = span(trace, SpanKind::Query);
            std::thread::sleep(Duration::from_millis(2));
            note_ok(true);
            drop(guard);
        }
        let by_kind = recorder().snapshot(&TraceFilter {
            trace: Some(trace),
            kind: Some(SpanKind::Ingest),
            ..TraceFilter::default()
        });
        assert_eq!(by_kind.len(), 1);
        assert_eq!(by_kind[0].kind, SpanKind::Ingest);
        let slow_only = recorder().snapshot(&TraceFilter {
            trace: Some(trace),
            min_total_us: Some(1_000),
            ..TraceFilter::default()
        });
        assert_eq!(slow_only.len(), 1);
        assert!(slow_only[0].total_ns >= 1_000_000);
        let newest = recorder().snapshot(&TraceFilter {
            trace: Some(trace),
            limit: 2,
            ..TraceFilter::default()
        });
        assert_eq!(newest.len(), 2);
    }

    #[test]
    fn slow_log_captures_full_attribution_over_threshold() {
        let _exclusive = exclusive();
        let previous = recorder().slow_threshold_us();
        recorder().set_slow_threshold(Duration::from_micros(500));
        let trace = next_trace_id();
        {
            let guard = span(trace, SpanKind::Query);
            add_phase(Phase::Kernel, Duration::from_nanos(777));
            std::thread::sleep(Duration::from_millis(2));
            note_ok(true);
            drop(guard);
        }
        let slow = recorder().slow_queries();
        let ours: Vec<_> = slow.iter().filter(|r| r.trace == trace).collect();
        assert_eq!(ours.len(), 1);
        assert_eq!(ours[0].phase(Phase::Kernel), 777);
        assert!(ours[0].unix_ms > 0);
        recorder().set_slow_threshold(Duration::from_micros(previous.min(u64::MAX / 2)));
        if previous == u64::MAX {
            recorder().set_slow_threshold(Duration::MAX);
        }
    }

    #[test]
    fn record_encoding_round_trips() {
        let _exclusive = exclusive();
        let record = SpanRecord {
            trace: 0xdead_beef,
            span: 42,
            kind: SpanKind::Pump,
            ok: true,
            cache: CacheNote::Coalesced,
            epoch: 9,
            sa: 123,
            ra: 456,
            total_ns: 789,
            unix_ms: 1_700_000_000_000,
            phase_ns: std::array::from_fn(|i| i as u64 * 11),
        };
        assert_eq!(SpanRecord::decode(&record.encode()), record);
    }

    #[test]
    fn kind_and_phase_labels_round_trip() {
        let _exclusive = exclusive();
        for kind in [
            SpanKind::Query,
            SpanKind::Subscribe,
            SpanKind::Ingest,
            SpanKind::Publish,
            SpanKind::Pump,
            SpanKind::Batch,
            SpanKind::Other,
        ] {
            assert_eq!(SpanKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(SpanKind::from_label("frobnicate"), None);
        let mut seen = std::collections::HashSet::new();
        for phase in Phase::ALL {
            assert!(seen.insert(phase.label()), "duplicate phase label");
        }
    }
}
