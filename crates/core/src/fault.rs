//! Deterministic fault injection for durability and serving I/O.
//!
//! A [`FaultPlan`] is a seeded, schedule-driven oracle that the WAL
//! writer ([`crate::wal`]) and `greca-serve`'s connection I/O consult
//! before every fallible operation. Each consultation names a
//! [`FaultCtx`] channel (WAL write, WAL fsync, socket read, socket
//! write, queued work) and receives either `None` (proceed normally)
//! or an [`IoFault`] to inject: a short/torn write, a failed fsync, a
//! full disk, a process crash, a delayed or dropped socket, or a
//! worker panic.
//!
//! Decisions are a pure function of `(seed, channel, per-channel op
//! index)` plus an explicit schedule, so a failing chaos run replays
//! bit-identically from its seed. Every injected fault is recorded in
//! a log that tests and the `chaos` bench read back to assert that
//! the faults they asked for actually fired.
//!
//! The special [`IoFault::Crash`] fault leaves a torn prefix of the
//! in-flight write on disk and latches the plan into a *crashed*
//! state: every subsequent WAL-channel operation fails until
//! [`FaultPlan::clear_crashed`] — simulating process death mid-write
//! without killing the test process.
//!
//! A plan can also be parsed from the `GRECA_FAULT_PLAN` environment
//! variable (see [`FaultPlan::from_env`]), which CI uses to run the
//! ordinary serve test suites under a background fault schedule.

use std::fmt;
use std::sync::Mutex;

/// The I/O channel a fault decision applies to.
///
/// Channels have independent operation counters so a schedule like
/// "fail the 3rd fsync" is unaffected by how many socket reads
/// happened in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultCtx {
    /// A WAL frame append (file write).
    WalWrite,
    /// A WAL fsync / flush-to-durable-media.
    WalSync,
    /// A socket read in the serve layer.
    SockRead,
    /// A socket write in the serve layer (responses and pushes).
    SockWrite,
    /// A unit of queued work executing on a worker thread.
    Work,
}

impl FaultCtx {
    /// Every channel, in the order [`FaultPlan::op_counts`] reports.
    pub const ALL: [FaultCtx; 5] = [
        FaultCtx::WalWrite,
        FaultCtx::WalSync,
        FaultCtx::SockRead,
        FaultCtx::SockWrite,
        FaultCtx::Work,
    ];

    fn index(self) -> usize {
        match self {
            FaultCtx::WalWrite => 0,
            FaultCtx::WalSync => 1,
            FaultCtx::SockRead => 2,
            FaultCtx::SockWrite => 3,
            FaultCtx::Work => 4,
        }
    }

    /// Parse the wire name used by `GRECA_FAULT_PLAN` (e.g.
    /// `wal_sync`).
    pub fn parse(name: &str) -> Option<FaultCtx> {
        match name {
            "wal_write" => Some(FaultCtx::WalWrite),
            "wal_sync" => Some(FaultCtx::WalSync),
            "sock_read" => Some(FaultCtx::SockRead),
            "sock_write" => Some(FaultCtx::SockWrite),
            "work" => Some(FaultCtx::Work),
            _ => None,
        }
    }
}

impl fmt::Display for FaultCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultCtx::WalWrite => "wal_write",
            FaultCtx::WalSync => "wal_sync",
            FaultCtx::SockRead => "sock_read",
            FaultCtx::SockWrite => "sock_write",
            FaultCtx::Work => "work",
        };
        f.write_str(name)
    }
}

/// A single fault to inject into one I/O operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// The operation fails outright with an injected I/O error;
    /// nothing is written. Models a failed fsync or a generic EIO.
    Fail,
    /// A short write: only `keep_permille`/1000 of the buffer reaches
    /// the file (rounded down, always at least one byte short), then
    /// the write reports an error. The WAL self-heals by truncating
    /// back to the last frame boundary.
    Torn {
        /// Fraction of the buffer (in permille) that lands on disk.
        keep_permille: u16,
    },
    /// The device is full: nothing is written and the operation fails
    /// with a storage-full error. Repeated via a schedule or rule this
    /// models a persistently wedged WAL (degraded mode).
    DiskFull,
    /// Process crash mid-write: a torn prefix (like [`IoFault::Torn`])
    /// is left on disk, the plan latches crashed, and every later
    /// WAL-channel operation fails until [`FaultPlan::clear_crashed`].
    /// Unlike `Torn`, the WAL does *not* self-heal — the torn bytes
    /// stay for recovery to find, exactly as after `kill -9`.
    Crash {
        /// Fraction of the buffer (in permille) that lands on disk.
        keep_permille: u16,
    },
    /// The operation is delayed by this many milliseconds and then
    /// proceeds normally. Models a slow disk or network.
    Delay {
        /// Injected latency in milliseconds.
        millis: u64,
    },
    /// The peer vanishes: the socket operation fails with a
    /// connection-reset error.
    DropConn,
    /// The worker thread executing the queued request panics.
    Panic,
}

impl IoFault {
    /// Parse the wire name used by `GRECA_FAULT_PLAN`, with an
    /// optional numeric argument (torn/crash keep permille, delay
    /// milliseconds).
    pub fn parse(name: &str, arg: Option<u64>) -> Option<IoFault> {
        match name {
            "fail" => Some(IoFault::Fail),
            "torn" => Some(IoFault::Torn {
                keep_permille: arg.unwrap_or(500).min(1000) as u16,
            }),
            "diskfull" => Some(IoFault::DiskFull),
            "crash" => Some(IoFault::Crash {
                keep_permille: arg.unwrap_or(500).min(1000) as u16,
            }),
            "delay" => Some(IoFault::Delay {
                millis: arg.unwrap_or(1),
            }),
            "drop" => Some(IoFault::DropConn),
            "panic" => Some(IoFault::Panic),
            _ => None,
        }
    }

    /// Convert this fault into the `std::io::Error` the faulted
    /// operation should report. `Delay` and `Panic` have no error
    /// representation and map to a generic injected error if asked.
    pub fn to_io_error(self) -> std::io::Error {
        use std::io::{Error, ErrorKind};
        match self {
            IoFault::Fail => Error::other("injected fault: io failure"),
            IoFault::Torn { .. } => Error::new(ErrorKind::WriteZero, "injected fault: torn write"),
            IoFault::DiskFull => {
                Error::other("injected fault: storage full (no space left on device)")
            }
            IoFault::Crash { .. } => Error::other("injected fault: process crashed"),
            IoFault::DropConn => {
                Error::new(ErrorKind::ConnectionReset, "injected fault: peer dropped")
            }
            IoFault::Delay { .. } | IoFault::Panic => Error::other("injected fault"),
        }
    }

    /// How many bytes of a `len`-byte buffer a torn/crash write keeps.
    /// Always strictly less than `len` so the frame is really torn.
    pub fn torn_keep(self, len: usize) -> usize {
        let permille = match self {
            IoFault::Torn { keep_permille } | IoFault::Crash { keep_permille } => {
                keep_permille as usize
            }
            _ => return len,
        };
        if len == 0 {
            return 0;
        }
        (len * permille / 1000).min(len - 1)
    }
}

/// One entry in the injected-fault log: which fault fired on which
/// operation of which channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Channel the fault fired on.
    pub ctx: FaultCtx,
    /// Zero-based per-channel operation index it fired at.
    pub op: u64,
    /// The fault that was injected.
    pub fault: IoFault,
}

/// A probabilistic rule: on every `ctx` operation, inject `fault`
/// with probability `per_mille`/1000, decided by the seeded hash.
#[derive(Debug, Clone, Copy)]
struct FaultRule {
    ctx: FaultCtx,
    per_mille: u16,
    fault: IoFault,
}

/// A scheduled fault: inject `fault` on exactly the `op`-th
/// (zero-based) operation of `ctx`.
#[derive(Debug, Clone, Copy)]
struct ScheduledFault {
    ctx: FaultCtx,
    op: u64,
    fault: IoFault,
}

#[derive(Debug, Default)]
struct PlanState {
    counters: [u64; 5],
    injected: Vec<InjectedFault>,
    crashed: bool,
}

/// A deterministic fault-injection plan shared by every I/O layer of
/// one engine/server instance.
///
/// Decisions combine an explicit schedule ("fail the 3rd fsync") with
/// probabilistic per-channel rules ("delay 2% of socket reads"),
/// both derived purely from the seed and per-channel op counters —
/// two plans with the same seed and schedule observe identical fault
/// sequences given identical op sequences.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    scheduled: Vec<ScheduledFault>,
    rules: Vec<FaultRule>,
    state: Mutex<PlanState>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// A plan with the given seed and no faults; add faults with
    /// [`Self::schedule`] and [`Self::rule`].
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            scheduled: Vec::new(),
            rules: Vec::new(),
            state: Mutex::new(PlanState::default()),
        }
    }

    /// Schedule `fault` to fire on exactly the `op`-th (zero-based)
    /// operation of `ctx`.
    pub fn schedule(mut self, ctx: FaultCtx, op: u64, fault: IoFault) -> FaultPlan {
        self.scheduled.push(ScheduledFault { ctx, op, fault });
        self
    }

    /// Add a probabilistic rule: every `ctx` operation injects
    /// `fault` with probability `per_mille`/1000 (seeded, so the
    /// sequence is reproducible).
    pub fn rule(mut self, ctx: FaultCtx, per_mille: u16, fault: IoFault) -> FaultPlan {
        self.rules.push(FaultRule {
            ctx,
            per_mille: per_mille.min(1000),
            fault,
        });
        self
    }

    /// The seed this plan draws from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Consult the plan before one `ctx` operation. Advances the
    /// channel's op counter; returns the fault to inject, if any.
    ///
    /// While the plan is crashed, every WAL-channel operation returns
    /// [`IoFault::Fail`] (the process is "dead"); other channels
    /// proceed normally so a test harness can still talk to peers.
    pub fn decide(&self, ctx: FaultCtx) -> Option<IoFault> {
        let mut state = crate::query::lock_unpoisoned(&self.state);
        let op = state.counters[ctx.index()];
        state.counters[ctx.index()] += 1;

        if state.crashed && matches!(ctx, FaultCtx::WalWrite | FaultCtx::WalSync) {
            return Some(IoFault::Fail);
        }

        let mut hit = self
            .scheduled
            .iter()
            .find(|s| s.ctx == ctx && s.op == op)
            .map(|s| s.fault);

        if hit.is_none() {
            for (ri, rule) in self.rules.iter().enumerate() {
                if rule.ctx != ctx {
                    continue;
                }
                // Mix the rule's index into the draw so stacked rules
                // on one channel roll independently per op — with one
                // shared draw the first matching rule would shadow the
                // rest forever (a draw under its threshold fires it; a
                // draw over it is over every lower threshold too).
                let draw = splitmix64(
                    self.seed
                        ^ (ctx.index() as u64).rotate_left(32)
                        ^ op.wrapping_mul(0x9e3b)
                        ^ (ri as u64).rotate_left(48),
                );
                if draw % 1000 < rule.per_mille as u64 {
                    hit = Some(rule.fault);
                    break;
                }
            }
        }

        if let Some(fault) = hit {
            if matches!(fault, IoFault::Crash { .. }) {
                state.crashed = true;
            }
            state.injected.push(InjectedFault { ctx, op, fault });
        }
        hit
    }

    /// Whether a [`IoFault::Crash`] has latched the plan.
    pub fn is_crashed(&self) -> bool {
        crate::query::lock_unpoisoned(&self.state).crashed
    }

    /// Un-latch a crash so the plan (and the WAL behind it) can be
    /// reused after "restart" in a test harness.
    pub fn clear_crashed(&self) {
        crate::query::lock_unpoisoned(&self.state).crashed = false;
    }

    /// Every fault injected so far, in firing order.
    pub fn injected(&self) -> Vec<InjectedFault> {
        crate::query::lock_unpoisoned(&self.state).injected.clone()
    }

    /// How many operations each channel has performed, in
    /// [`FaultCtx::ALL`] order (wal_write, wal_sync, sock_read,
    /// sock_write, work).
    pub fn op_counts(&self) -> [u64; 5] {
        crate::query::lock_unpoisoned(&self.state).counters
    }

    /// If the fault names a delay, sleep it out. Call sites use this
    /// so `Delay` faults need no per-site handling.
    pub fn maybe_sleep(fault: Option<IoFault>) -> Option<IoFault> {
        if let Some(IoFault::Delay { millis }) = fault {
            std::thread::sleep(std::time::Duration::from_millis(millis));
            return None;
        }
        fault
    }

    /// Parse a plan from a spec string, the `GRECA_FAULT_PLAN`
    /// format: semicolon-separated clauses
    ///
    /// * `seed=<u64>`
    /// * `sched=<ctx>:<op>:<fault>[:<arg>]`
    /// * `rule=<ctx>:<fault>:<per_mille>[:<arg>]`
    ///
    /// where `<ctx>` is one of `wal_write`, `wal_sync`, `sock_read`,
    /// `sock_write`, `work` and `<fault>` one of `fail`, `torn`,
    /// `diskfull`, `crash`, `delay`, `drop`, `panic` (`<arg>` is the
    /// torn/crash keep-permille or delay milliseconds). Returns
    /// `None` on any malformed clause.
    ///
    /// ```
    /// use greca_core::fault::{FaultCtx, FaultPlan, IoFault};
    /// let plan = FaultPlan::parse("seed=7;sched=wal_sync:2:fail;rule=sock_read:delay:50:3")
    ///     .unwrap();
    /// assert_eq!(plan.seed(), 7);
    /// assert_eq!(plan.decide(FaultCtx::WalSync), None);
    /// assert_eq!(plan.decide(FaultCtx::WalSync), None);
    /// assert_eq!(plan.decide(FaultCtx::WalSync), Some(IoFault::Fail));
    /// ```
    pub fn parse(spec: &str) -> Option<FaultPlan> {
        let mut plan = FaultPlan::new(0);
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause.split_once('=')?;
            match key.trim() {
                "seed" => plan.seed = value.trim().parse().ok()?,
                "sched" => {
                    let mut parts = value.split(':');
                    let ctx = FaultCtx::parse(parts.next()?.trim())?;
                    let op: u64 = parts.next()?.trim().parse().ok()?;
                    let name = parts.next()?.trim();
                    let arg = match parts.next() {
                        Some(a) => Some(a.trim().parse().ok()?),
                        None => None,
                    };
                    let fault = IoFault::parse(name, arg)?;
                    plan = plan.schedule(ctx, op, fault);
                }
                "rule" => {
                    let mut parts = value.split(':');
                    let ctx = FaultCtx::parse(parts.next()?.trim())?;
                    let name = parts.next()?.trim();
                    let per_mille: u16 = parts.next()?.trim().parse().ok()?;
                    let arg = match parts.next() {
                        Some(a) => Some(a.trim().parse().ok()?),
                        None => None,
                    };
                    let fault = IoFault::parse(name, arg)?;
                    plan = plan.rule(ctx, per_mille, fault);
                }
                _ => return None,
            }
        }
        Some(plan)
    }

    /// Build a plan from the `GRECA_FAULT_PLAN` environment variable,
    /// if set and well-formed (see [`Self::parse`]). The serve test
    /// suites call this so CI can re-run them under a background
    /// fault schedule without code changes.
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var("GRECA_FAULT_PLAN").ok()?;
        FaultPlan::parse(&spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduled_fault_fires_at_exact_op() {
        let plan = FaultPlan::new(1).schedule(FaultCtx::WalSync, 2, IoFault::Fail);
        assert_eq!(plan.decide(FaultCtx::WalSync), None);
        // Other channels do not advance the wal_sync counter.
        assert_eq!(plan.decide(FaultCtx::SockRead), None);
        assert_eq!(plan.decide(FaultCtx::WalSync), None);
        assert_eq!(plan.decide(FaultCtx::WalSync), Some(IoFault::Fail));
        assert_eq!(plan.decide(FaultCtx::WalSync), None);
        assert_eq!(
            plan.injected(),
            vec![InjectedFault {
                ctx: FaultCtx::WalSync,
                op: 2,
                fault: IoFault::Fail
            }]
        );
    }

    #[test]
    fn probabilistic_rules_are_deterministic_per_seed() {
        let runs: Vec<Vec<Option<IoFault>>> = (0..2)
            .map(|_| {
                let plan = FaultPlan::new(42).rule(FaultCtx::SockWrite, 300, IoFault::DropConn);
                (0..64).map(|_| plan.decide(FaultCtx::SockWrite)).collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        let hits = runs[0].iter().filter(|f| f.is_some()).count();
        assert!(hits > 0, "300‰ over 64 ops should fire at least once");
        assert!(hits < 64, "300‰ should not fire every time");
    }

    #[test]
    fn stacked_rules_on_one_channel_fire_independently() {
        // Two equal-threshold rules on one channel: sharing a single
        // draw, the first would decide for both and the second could
        // never fire. Each rule rolls its own draw, so both fault
        // kinds show up over enough ops.
        let plan = FaultPlan::new(7)
            .rule(FaultCtx::SockWrite, 150, IoFault::DropConn)
            .rule(FaultCtx::SockWrite, 150, IoFault::Fail);
        for _ in 0..512 {
            plan.decide(FaultCtx::SockWrite);
        }
        let injected = plan.injected();
        assert!(injected.iter().any(|f| f.fault == IoFault::DropConn));
        assert!(
            injected.iter().any(|f| f.fault == IoFault::Fail),
            "the second rule must get an independent draw, not the first rule's shadow"
        );
    }

    #[test]
    fn crash_latches_wal_channels_only() {
        let plan = FaultPlan::new(9).schedule(
            FaultCtx::WalWrite,
            0,
            IoFault::Crash { keep_permille: 500 },
        );
        assert_eq!(
            plan.decide(FaultCtx::WalWrite),
            Some(IoFault::Crash { keep_permille: 500 })
        );
        assert!(plan.is_crashed());
        assert_eq!(plan.decide(FaultCtx::WalWrite), Some(IoFault::Fail));
        assert_eq!(plan.decide(FaultCtx::WalSync), Some(IoFault::Fail));
        assert_eq!(plan.decide(FaultCtx::SockRead), None);
        plan.clear_crashed();
        assert_eq!(plan.decide(FaultCtx::WalWrite), None);
    }

    #[test]
    fn torn_keep_is_always_short() {
        let torn = IoFault::Torn {
            keep_permille: 1000,
        };
        for len in 1..64usize {
            assert!(torn.torn_keep(len) < len);
        }
        assert_eq!(torn.torn_keep(0), 0);
        assert_eq!(IoFault::Fail.torn_keep(10), 10);
    }

    #[test]
    fn parse_round_trips_the_documented_grammar() {
        let plan = FaultPlan::parse(
            "seed=11; sched=wal_write:0:torn:250; rule=work:panic:1000; sched=sock_write:1:drop",
        )
        .unwrap();
        assert_eq!(plan.seed(), 11);
        assert_eq!(
            plan.decide(FaultCtx::WalWrite),
            Some(IoFault::Torn { keep_permille: 250 })
        );
        assert_eq!(plan.decide(FaultCtx::Work), Some(IoFault::Panic));
        assert_eq!(plan.decide(FaultCtx::SockWrite), None);
        assert_eq!(plan.decide(FaultCtx::SockWrite), Some(IoFault::DropConn));

        assert!(FaultPlan::parse("sched=bogus:0:fail").is_none());
        assert!(FaultPlan::parse("rule=wal_write:fail").is_none());
        assert!(FaultPlan::parse("nonsense").is_none());
    }

    #[test]
    fn delay_is_absorbed_by_maybe_sleep() {
        assert_eq!(
            FaultPlan::maybe_sleep(Some(IoFault::Delay { millis: 1 })),
            None
        );
        assert_eq!(
            FaultPlan::maybe_sleep(Some(IoFault::Fail)),
            Some(IoFault::Fail)
        );
        assert_eq!(FaultPlan::maybe_sleep(None), None);
    }
}
