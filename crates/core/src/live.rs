//! Live ingestion: epoch-swapped substrates over an evolving rating log.
//!
//! §2.4's ad-hoc-group scenario assumes preferences and affinities keep
//! evolving *between* queries, while the warm serving path
//! ([`crate::substrate`]) wants long-lived precomputed storage. Trust-
//! and reputation-serving systems resolve the same tension with
//! **versioned snapshots**, and that is the design here:
//!
//! * a [`LiveEngine`] owns the rating log and a `RatingStore` of staged
//!   deltas ([`LiveEngine::ingest`] / [`LiveEngine::retract`] /
//!   [`LiveEngine::stage`]);
//! * publishing a batch computes its *dirty set* (`greca-cf`'s
//!   `DeltaBatch::dirty_set`), rebuilds only the invalidated preference
//!   segments via [`Substrate::rebuild_dirty`] — structurally sharing
//!   every clean segment and the affinity arrays — and swaps the result
//!   in as a new **epoch** behind a mutex-guarded `Arc` handoff;
//! * readers [`pin`](LiveEngine::pin) an epoch: a [`PinnedEpoch`] holds
//!   `Arc`s to that epoch's matrix and substrate for as long as the
//!   caller keeps it, so a query runs to completion against one
//!   consistent snapshot no matter how many swaps happen mid-flight,
//!   and its results are bit-identical to a cold rebuild at that epoch
//!   (the contract proven by `live_properties.rs`);
//! * each epoch gets a **fresh group-affinity cache**: a swap retires
//!   every cached `GroupAffinity` view together with the substrate it
//!   was computed beside, so a stale epoch's views are never served
//!   after a swap (the regression test in
//!   `tests/cold_warm_equivalence.rs` pins this down).
//!
//! The item universe and the population-affinity index stay fixed for
//! the engine's lifetime — ratings stream, the catalog and the social
//! index version at engine granularity (the paper's affinity index is
//! itself append-only; see `PopulationAffinity::append_period`).
//!
//! ```
//! use greca_core::live::{LiveEngine, LiveModel};
//! use greca_core::QueryError;
//! use greca_affinity::{PopulationAffinity, TableAffinitySource};
//! use greca_dataset::{Granularity, Group, ItemId, Rating, RatingMatrixBuilder, Timeline, UserId};
//!
//! # fn main() -> Result<(), QueryError> {
//! // A tiny world: three users, four items, two periods of affinity.
//! let mut b = RatingMatrixBuilder::new(3, 4);
//! b.rate(UserId(0), ItemId(0), 5.0, 0).rate(UserId(1), ItemId(1), 4.0, 0);
//! let mut src = TableAffinitySource::new();
//! src.set_static(UserId(0), UserId(1), 1.0)
//!    .set_static(UserId(1), UserId(2), 0.4);
//! let tl = Timeline::discretize(0, 100, Granularity::Custom(50)).unwrap();
//! let users = vec![UserId(0), UserId(1), UserId(2)];
//! let population = PopulationAffinity::build(&src, &users, &tl);
//! let items: Vec<ItemId> = (0..4).map(ItemId).collect();
//!
//! let live = LiveEngine::new(&population, LiveModel::Raw, &b.build(), &items)?;
//! let group = Group::new(vec![UserId(0), UserId(1)]).unwrap();
//!
//! // Serve from a pinned epoch…
//! let before = live.pin();
//! let r0 = before.engine().query(&group).items(&items).top(2).run()?;
//!
//! // …ingest a batch (publishes epoch 1)…
//! let report = live.ingest(&[Rating { user: UserId(1), item: ItemId(2), value: 5.0, ts: 7 }])?;
//! assert_eq!(report.epoch, 1);
//! assert_eq!(report.rebuilt_segments, 1, "only u1's segment re-sorted");
//!
//! // …and the old pin still serves its epoch, bit-identically.
//! assert_eq!(before.engine().query(&group).items(&items).top(2).run()?, r0);
//! let after = live.pin();
//! assert_eq!(after.epoch(), 1);
//! assert!(after.engine().query(&group).items(&items).top(2).run().is_ok());
//! # Ok(()) }
//! ```

use crate::query::{lock_unpoisoned, new_affinity_cache, AffinityCache, GrecaEngine, QueryError};
use crate::substrate::{BuildOptions, Substrate};
use crate::wal::{RecoverySummary, Wal, WalOptions, WalRecord};
use greca_affinity::PopulationAffinity;
use greca_cf::{
    candidate_items, CfConfig, DirtySet, InvalidationScope, NonFiniteScore, PreferenceList,
    PreferenceProvider, RatingStore, RawRatings, UserCfModel,
};
use greca_dataset::{Group, ItemId, Rating, RatingMatrix, UserId};
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// Saturating nanoseconds since `start`.
fn elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Wall clock, milliseconds since the Unix epoch (0 on a pre-1970
/// clock).
fn unix_now_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

/// Which preference model a [`LiveEngine`] re-derives dirty segments
/// from at each epoch.
///
/// The model choice fixes the invalidation scope a delta batch implies
/// (see `greca-cf`'s `InvalidationScope`): raw ratings dirty only the
/// batch users' lists; user-based CF propagates through co-raters and
/// the global-mean fallback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LiveModel {
    /// Observed ratings served verbatim (0 when unrated) — the
    /// `RawRatings` provider.
    Raw,
    /// User-based collaborative filtering refit over dirty users at
    /// each epoch — the paper's §4 `apref` source.
    UserCf(CfConfig),
}

impl LiveModel {
    /// The invalidation scope rating deltas have under this model.
    pub fn scope(&self) -> InvalidationScope {
        match self {
            LiveModel::Raw => InvalidationScope::RowOnly,
            LiveModel::UserCf(_) => InvalidationScope::Neighborhood,
        }
    }
}

/// A [`PreferenceProvider`] over one epoch's rating matrix, owned by
/// `Arc` so a pinned epoch is self-contained (no borrows into the
/// engine).
///
/// Warm queries never call it — they serve from the epoch's substrate —
/// so it optimizes for the *rare* paths: cold fallback (a group member
/// without a segment, a foreign itemset) fits a per-user CF
/// neighbourhood on demand, and `candidate_items` reads the matrix
/// directly. Batch work (substrate construction and rebuilds) uses a
/// properly batch-fitted model instead.
#[derive(Debug, Clone)]
pub struct EpochProvider {
    matrix: Arc<RatingMatrix>,
    model: LiveModel,
}

impl PreferenceProvider for EpochProvider {
    fn apref(&self, u: UserId, i: ItemId) -> f64 {
        match self.model {
            LiveModel::Raw => RawRatings(&self.matrix).apref(u, i),
            LiveModel::UserCf(cfg) => UserCfModel::fit_for(&self.matrix, cfg, &[u]).predict(u, i),
        }
    }

    fn preference_list(
        &self,
        u: UserId,
        items: &[ItemId],
    ) -> Result<PreferenceList, NonFiniteScore> {
        match self.model {
            LiveModel::Raw => RawRatings(&self.matrix).preference_list(u, items),
            LiveModel::UserCf(cfg) => {
                UserCfModel::fit_for(&self.matrix, cfg, &[u]).preference_list(u, items)
            }
        }
    }

    fn candidate_items(&self, group: &Group) -> Option<Vec<ItemId>> {
        Some(candidate_items(&self.matrix, group))
    }
}

/// One published epoch: the rating matrix after every batch up to (and
/// including) this epoch, and the substrate rebuilt from it.
#[derive(Debug)]
struct EpochState {
    epoch: u64,
    matrix: Arc<RatingMatrix>,
    substrate: Arc<Substrate>,
}

/// The currently-published epoch plus its epoch-scoped affinity cache,
/// swapped together under one lock.
struct CurrentEpoch {
    state: Arc<EpochState>,
    cache: AffinityCache,
}

/// What one [`LiveEngine::publish`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// The epoch the batch was published as (unchanged for an empty
    /// batch).
    pub epoch: u64,
    /// Rating upserts applied.
    pub upserts: usize,
    /// Rating retractions applied.
    pub retractions: usize,
    /// Users whose preference lists the batch invalidated (across the
    /// whole population, covered by a segment or not). A **lower
    /// bound** when [`IngestReport::full_rebuild`] is set: the dirty
    /// computation stops as soon as the wholesale rebuild is
    /// inevitable.
    pub dirty_users: usize,
    /// Pair-affinity entries the batch invalidated (relevant only to
    /// rating-derived affinity sources; the paper's social-derived index
    /// never goes stale from ratings). Lower-bounded like
    /// [`IngestReport::dirty_users`] under a full rebuild.
    pub dirty_pairs: usize,
    /// Preference segments recomputed for the new epoch.
    pub rebuilt_segments: usize,
    /// Preference segments structurally shared with the previous epoch.
    pub shared_segments: usize,
    /// Whether the dirty set covered enough of the population that the
    /// engine rebuilt the substrate wholesale instead of per segment
    /// (see [`LiveEngine::with_full_rebuild_fraction`]).
    pub full_rebuild: bool,
}

/// A hook invoked after every epoch swap — see
/// [`LiveEngine::on_publish`].
type EpochHook = Arc<dyn Fn(u64) + Send + Sync>;

/// A hook invoked after every epoch swap with the full publish delta —
/// see [`LiveEngine::on_publish_delta`].
type DeltaHook = Arc<dyn Fn(&PublishDelta) + Send + Sync>;

/// Everything a publish invalidated, handed to
/// [`LiveEngine::on_publish_delta`] subscribers so they can invalidate
/// *selectively* instead of wholesale.
#[derive(Debug, Clone)]
pub struct PublishDelta {
    /// The epoch just published.
    pub epoch: u64,
    /// Users and affinity pairs the batch invalidated, across the whole
    /// population (`Arc`-shared so hooks can retain it cheaply). A
    /// **lower bound** when [`PublishDelta::full_rebuild`] is set — see
    /// [`IngestReport::dirty_users`]; subscribers must then treat
    /// everything as dirty.
    pub dirty: Arc<DirtySet>,
    /// Affinity periods invalidated wholesale. Always empty today: the
    /// population affinity index is fixed for the engine's lifetime, so
    /// rating publishes never stale a period. The field exists so
    /// rating-derived or time-decayed affinity sources can invalidate
    /// per period without another hook-signature change.
    pub periods: Vec<usize>,
    /// Whether the publish fell back to a wholesale substrate rebuild,
    /// making [`PublishDelta::dirty`] a lower bound. Subscribers that
    /// keep state keyed by footprint disjointness must drop everything
    /// when this is set.
    pub full_rebuild: bool,
}

impl PublishDelta {
    /// Whether a query with footprint `fp` may observe a different
    /// result at this delta's epoch: always true under a full rebuild
    /// (the dirty set is a lower bound), otherwise footprint
    /// intersection against the dirty set (and the invalidated
    /// periods, for affinity-using footprints).
    pub fn affects(&self, fp: &crate::query::QueryFootprint) -> bool {
        self.full_rebuild
            || fp.intersects(&self.dirty)
            || (fp.uses_affinity() && self.periods.contains(&fp.period()))
    }
}

/// Outcome of staging one (optionally client-keyed) batch — see
/// [`LiveEngine::stage_keyed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagedBatch {
    /// The engine-assigned monotonic batch id (for a duplicate, the id
    /// the key was originally staged under).
    pub batch_id: u64,
    /// Whether the client key had already been staged — nothing was
    /// staged or logged again (idempotent retry).
    pub duplicate: bool,
}

/// Durability and freshness snapshot — see [`LiveEngine::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveHealth {
    /// The currently-published epoch.
    pub epoch: u64,
    /// Whether a write-ahead log is attached.
    pub wal_attached: bool,
    /// Whether the most recent WAL append or commit failed. While
    /// stalled, mutations fail (nothing can be made durable) but reads
    /// keep serving the last published epoch — the serving layer's
    /// *degraded mode*. Cleared by the next successful publish.
    pub wal_stalled: bool,
    /// Time since the last successful publish (or engine creation/
    /// recovery): the staleness bound of the epoch reads serve.
    pub staleness: Duration,
    /// Staged-but-unpublished delta keys.
    pub staged: usize,
    /// Highest batch id staged so far (0 if none).
    pub last_batch: u64,
}

/// What [`LiveEngine::recover`] replayed from the write-ahead log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The epoch the recovered engine resumed at (the last committed
    /// publish in the log).
    pub epoch: u64,
    /// Batch records staged during replay.
    pub batches_replayed: usize,
    /// Publish records re-applied during replay.
    pub publishes_replayed: usize,
    /// Records skipped as idempotent duplicates (a batch id at or
    /// below the watermark, or a publish at or below the current
    /// epoch) — the crash-retry debris the log design expects.
    pub duplicates_skipped: usize,
    /// Staged delta keys left in the store after replay: batches that
    /// were logged (and acknowledged as *staged*) but never committed
    /// by a publish. They ride into the next publish.
    pub staged_tail: usize,
    /// What the segment scan found (torn tail, truncated bytes, …).
    pub wal: RecoverySummary,
}

/// One epoch's lineage: what a publish folded in, what it invalidated,
/// how it rebuilt, and where its wall clock went — the pipeline
/// provenance record behind the serve layer's `stats` lineage block.
/// The engine retains the most recent [`LINEAGE_CAP`] of these
/// ([`LiveEngine::lineage_recent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochLineage {
    /// The epoch this publish produced.
    pub epoch: u64,
    /// Wall-clock publish time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Rating upserts folded into this epoch.
    pub upserts: usize,
    /// Rating retractions folded into this epoch.
    pub retractions: usize,
    /// Users the batch invalidated (lower bound under a full rebuild —
    /// see [`IngestReport::dirty_users`]).
    pub dirty_users: usize,
    /// Pair-affinity entries invalidated (same caveat).
    pub dirty_pairs: usize,
    /// Preference segments recomputed.
    pub rebuilt_segments: usize,
    /// Preference segments structurally shared with the prior epoch.
    pub shared_segments: usize,
    /// Whether the publish rebuilt the substrate wholesale.
    pub full_rebuild: bool,
    /// Staging wall clock: applying deltas + computing the dirty set.
    pub stage_ns: u64,
    /// Substrate rebuild wall clock (incremental or wholesale).
    pub rebuild_ns: u64,
    /// WAL commit-marker wall clock (0 with no WAL attached).
    pub wal_ns: u64,
    /// Epoch-swap wall clock (installing the new state).
    pub swap_ns: u64,
    /// End-to-end publish wall clock (from drain to swap, hooks
    /// excluded).
    pub total_ns: u64,
}

/// Publish-pipeline aggregates since engine creation/recovery — the
/// summary half of the `stats` lineage block
/// ([`LiveEngine::lineage_summary`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineageSummary {
    /// The currently-published epoch.
    pub epoch: u64,
    /// Successful publishes since engine creation/recovery (an empty
    /// drain is not a publish).
    pub publishes: u64,
    /// Publishes that fell back to a wholesale rebuild.
    pub full_rebuilds: u64,
    /// Wall-clock time of the last successful publish, milliseconds
    /// since the Unix epoch (0 until the first one).
    pub last_publish_unix_ms: u64,
    /// WAL-stall windows entered since engine creation (each window is
    /// one contiguous degraded span: first failed append/commit to the
    /// next successful publish).
    pub degraded_windows: u64,
    /// Total milliseconds spent degraded, including the current window
    /// while one is open.
    pub degraded_ms_total: u64,
}

/// How many [`EpochLineage`] records the engine retains, oldest
/// evicted first.
pub const LINEAGE_CAP: usize = 64;

/// Bounded client-key → batch-id memory backing idempotent ingest
/// retries. Oldest keys are evicted first once the bound is hit.
#[derive(Debug, Default)]
struct SeenKeys {
    map: HashMap<u64, u64>,
    order: VecDeque<u64>,
}

/// How many client idempotency keys the engine remembers, oldest
/// evicted first. Eviction bounds memory but narrows the dedup window:
/// a retry whose key has aged out is restaged as a brand-new batch
/// with a fresh id — the WAL's batch-id watermark only dedupes replay
/// of already-logged batches, not fresh retries — and keep-latest
/// staging can then overwrite a newer rating for the same
/// `(user, item)` with the stale payload. Live clients retry within
/// seconds, so thousands of keys of headroom confines that hazard to
/// pathologically late retries.
const SEEN_KEYS_CAP: usize = 4096;

impl SeenKeys {
    fn get(&self, key: u64) -> Option<u64> {
        self.map.get(&key).copied()
    }

    fn insert(&mut self, key: u64, batch_id: u64) {
        if self.map.insert(key, batch_id).is_none() {
            self.order.push_back(key);
            if self.order.len() > SEEN_KEYS_CAP {
                if let Some(oldest) = self.order.pop_front() {
                    self.map.remove(&oldest);
                }
            }
        }
    }
}

/// A serving engine over an evolving rating log: ingestion on one side,
/// epoch-pinned warm queries on the other. See the module docs.
///
/// All methods take `&self`; the engine is `Sync` and meant to be
/// shared across writer and reader threads (`std::thread::scope`, an
/// `Arc`, …). Writers serialize on the staging store; readers only ever
/// take a brief lock to clone the current epoch's `Arc`s.
pub struct LiveEngine<'a> {
    population: &'a PopulationAffinity,
    model: LiveModel,
    store: Mutex<RatingStore>,
    current: Mutex<CurrentEpoch>,
    /// Optional write-ahead log; when attached, every staged batch and
    /// every publish marker is appended (and, per the fsync policy,
    /// made durable) *before* it is applied in memory. Locked after
    /// `store`, never the other way around.
    wal: Option<Mutex<Wal>>,
    /// Client idempotency keys already staged (see
    /// [`LiveEngine::stage_keyed`]).
    seen_keys: Mutex<SeenKeys>,
    /// Latched when a WAL append/commit fails; cleared by the next
    /// successful publish (see [`LiveHealth::wal_stalled`]).
    wal_stalled: AtomicBool,
    /// Engine creation instant — the base the atomic publish timestamp
    /// below is measured against.
    created: Instant,
    /// Milliseconds since `created` of the last successful publish (0
    /// until the first one). Atomic so read paths can compute the
    /// staleness bound without taking any lock — in particular without
    /// queueing behind a publish holding the staging store.
    last_publish_ms: AtomicU64,
    /// Dirty-coverage fraction at which a publish abandons per-segment
    /// work for one wholesale rebuild (see
    /// [`LiveEngine::with_full_rebuild_fraction`]).
    full_rebuild_fraction: f64,
    /// Recent per-epoch lineage records, newest last (cap
    /// [`LINEAGE_CAP`]).
    lineage: Mutex<VecDeque<EpochLineage>>,
    /// Successful publishes since creation/recovery.
    publishes: AtomicU64,
    /// Publishes that fell back to a wholesale rebuild.
    full_rebuilds: AtomicU64,
    /// Wall clock of the last successful publish (Unix ms; 0 = never).
    last_publish_unix_ms: AtomicU64,
    /// Degraded (WAL-stall) windows entered since creation.
    degraded_windows: AtomicU64,
    /// Total milliseconds spent in *closed* degraded windows.
    degraded_ms_total: AtomicU64,
    /// Engine-relative ms when the open degraded window began (0 =
    /// none open).
    stall_began_ms: AtomicU64,
    /// Epoch-swap observers (see [`LiveEngine::on_publish`]).
    epoch_hooks: Mutex<Vec<EpochHook>>,
    /// Epoch-swap observers that want the full publish delta (see
    /// [`LiveEngine::on_publish_delta`]).
    delta_hooks: Mutex<Vec<DeltaHook>>,
    /// Substrate construction options, applied to epoch 0 and to every
    /// full rebuild (incremental rebuilds inherit the compression from
    /// the previous epoch's substrate).
    build_options: BuildOptions,
}

/// Default dirty-coverage fraction above which [`LiveEngine::publish`]
/// rebuilds the substrate wholesale. Per-segment rebuilding beats a
/// full rebuild only while a meaningful share of segments stays clean;
/// once a batch invalidates (nearly) everything — the honest degenerate
/// case of exact user-CF over a dense cohort — the incremental path
/// pays the dirty bookkeeping *and* rebuilds everything anyway, turning
/// the "incremental" publish into a net regression. 0.95 keeps every
/// genuinely sparse batch incremental.
pub const DEFAULT_FULL_REBUILD_FRACTION: f64 = 0.95;

impl std::fmt::Debug for LiveEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveEngine")
            .field("universe", &self.population.universe().len())
            .field("model", &self.model)
            .field("epoch", &self.epoch())
            .field("staged", &self.staged())
            .finish()
    }
}

impl<'a> LiveEngine<'a> {
    /// Build epoch 0: pad `initial` so the population universe and
    /// `items` index safely, fit the model, and precompute the first
    /// substrate over every universe user.
    ///
    /// The population index and the item universe stay fixed for the
    /// engine's lifetime; ratings are what streams.
    pub fn new(
        population: &'a PopulationAffinity,
        model: LiveModel,
        initial: &RatingMatrix,
        items: &[ItemId],
    ) -> Result<Self, QueryError> {
        Self::new_with_options(population, model, initial, items, BuildOptions::default())
    }

    /// Like [`LiveEngine::new`], but with explicit substrate
    /// construction options — sharded build threads, score compression
    /// and the materialization budget (see [`BuildOptions`]). The
    /// options persist: every wholesale rebuild this engine performs
    /// (epoch 0, and any publish past the full-rebuild threshold) uses
    /// them, and incremental rebuilds keep the substrate's compression.
    pub fn new_with_options(
        population: &'a PopulationAffinity,
        model: LiveModel,
        initial: &RatingMatrix,
        items: &[ItemId],
        build_options: BuildOptions,
    ) -> Result<Self, QueryError> {
        let min_users = population.universe().last().map_or(0, |u| u.idx() + 1);
        let min_items = items.iter().map(|i| i.idx() + 1).max().unwrap_or(0);
        let matrix = Arc::new(initial.padded_to(min_users, min_items));
        let universe = population.universe();
        let substrate = match model {
            LiveModel::Raw => Substrate::build_with(
                &RawRatings(&matrix),
                population,
                items,
                universe,
                &[],
                build_options,
            )?,
            LiveModel::UserCf(cfg) => {
                let cf = UserCfModel::fit_for(&matrix, cfg, universe);
                Substrate::build_with(&cf, population, items, universe, &[], build_options)?
            }
        };
        Ok(LiveEngine {
            population,
            model,
            store: Mutex::new(RatingStore::new()),
            current: Mutex::new(CurrentEpoch {
                state: Arc::new(EpochState {
                    epoch: 0,
                    matrix,
                    substrate: Arc::new(substrate),
                }),
                cache: new_affinity_cache(),
            }),
            wal: None,
            seen_keys: Mutex::new(SeenKeys::default()),
            wal_stalled: AtomicBool::new(false),
            created: Instant::now(),
            last_publish_ms: AtomicU64::new(0),
            full_rebuild_fraction: DEFAULT_FULL_REBUILD_FRACTION,
            lineage: Mutex::new(VecDeque::new()),
            publishes: AtomicU64::new(0),
            full_rebuilds: AtomicU64::new(0),
            last_publish_unix_ms: AtomicU64::new(0),
            degraded_windows: AtomicU64::new(0),
            degraded_ms_total: AtomicU64::new(0),
            stall_began_ms: AtomicU64::new(0),
            epoch_hooks: Mutex::new(Vec::new()),
            delta_hooks: Mutex::new(Vec::new()),
            build_options,
        })
    }

    /// Attach a write-ahead log: from here on every staged batch and
    /// every publish marker is appended to `wal` *before* it is
    /// applied in memory, and a publish returns only after its commit
    /// frame is durable (per the log's [`crate::wal::FsyncPolicy`]).
    /// Attach before the first mutation — a fresh log via
    /// [`Wal::create`], or use [`LiveEngine::recover`] to reopen an
    /// existing one.
    pub fn with_wal(mut self, wal: Wal) -> Self {
        self.wal = Some(Mutex::new(wal));
        self
    }

    /// Rebuild an engine from its write-ahead log after a crash.
    ///
    /// Scans the segments in `dir` (truncating a torn final frame —
    /// see [`Wal::recover`]), builds epoch 0 from `initial` exactly
    /// like [`LiveEngine::new_with_options`], then replays the valid
    /// record prefix through the ordinary staging and publish paths:
    /// batch records restage under their original ids (duplicates are
    /// no-ops), publish records re-publish, and client idempotency
    /// keys are re-learned. The result is an engine whose last
    /// committed epoch is bit-identical to the pre-crash engine's —
    /// the invariant `crash_recovery.rs` proves — with any logged-but-
    /// uncommitted batches left staged for the next publish, and the
    /// log reattached ready to append.
    ///
    /// `initial` must be the same epoch-0 rating matrix the crashed
    /// engine was built from (the WAL logs deltas, not the base).
    pub fn recover(
        population: &'a PopulationAffinity,
        model: LiveModel,
        initial: &RatingMatrix,
        items: &[ItemId],
        build_options: BuildOptions,
        dir: impl AsRef<Path>,
        wal_options: WalOptions,
    ) -> Result<(Self, RecoveryReport), QueryError> {
        let (wal, records, summary) =
            Wal::recover(dir, wal_options).map_err(|e| QueryError::Wal {
                detail: format!("recovery scan failed: {e}"),
            })?;
        let engine = Self::new_with_options(population, model, initial, items, build_options)?;
        let mut batches = 0usize;
        let mut publishes = 0usize;
        let mut duplicates = 0usize;
        for record in records {
            match record {
                WalRecord::Batch {
                    batch_id,
                    client_key,
                    upserts,
                    retractions,
                } => {
                    let mut store = lock_unpoisoned(&engine.store);
                    if store.stage_batch(batch_id, &upserts, &retractions)? {
                        batches += 1;
                        if let Some(key) = client_key {
                            lock_unpoisoned(&engine.seen_keys).insert(key, batch_id);
                        }
                    } else {
                        duplicates += 1;
                    }
                }
                WalRecord::Publish { epoch, .. } => {
                    if engine.epoch() >= epoch {
                        duplicates += 1;
                        continue;
                    }
                    let report = engine.publish()?;
                    if report.epoch != epoch {
                        return Err(QueryError::Wal {
                            detail: format!(
                                "replay diverged: log commits epoch {epoch}, replay produced {}",
                                report.epoch
                            ),
                        });
                    }
                    publishes += 1;
                }
            }
        }
        let report = RecoveryReport {
            epoch: engine.epoch(),
            batches_replayed: batches,
            publishes_replayed: publishes,
            duplicates_skipped: duplicates,
            staged_tail: engine.staged(),
            wal: summary,
        };
        Ok((engine.with_wal(wal), report))
    }

    /// The substrate construction options this engine builds with.
    pub fn build_options(&self) -> BuildOptions {
        self.build_options
    }

    /// Register a hook invoked after every successful epoch swap with
    /// the epoch number just published.
    ///
    /// This is the invalidation signal serving layers build on: a
    /// result cache keyed beside epoch `e` registers a hook and clears
    /// itself wholesale the moment `e + 1` goes live, instead of
    /// checking the epoch on every read. Hooks run on the *publishing*
    /// thread, after the new epoch is pinnable and after the staging
    /// store is released — any pin taken from here on observes the
    /// published epoch. Keep hooks cheap (they sit on the ingestion
    /// path); empty publishes (no staged deltas) notify nobody.
    pub fn on_publish(&self, hook: impl Fn(u64) + Send + Sync + 'static) {
        lock_unpoisoned(&self.epoch_hooks).push(Arc::new(hook));
    }

    /// Like [`LiveEngine::on_publish`], but the hook receives the full
    /// [`PublishDelta`] — epoch, dirty set, invalidated periods, and the
    /// full-rebuild flag — so serving layers can invalidate
    /// *selectively*: drop only cached state whose
    /// [`QueryFootprint`](crate::query::QueryFootprint) intersects the
    /// dirty set, keep everything else (see [`PublishDelta::affects`]).
    /// Same timing and cheapness contract as [`LiveEngine::on_publish`];
    /// plain-epoch hooks and delta hooks both run on every publish,
    /// plain ones first.
    pub fn on_publish_delta(&self, hook: impl Fn(&PublishDelta) + Send + Sync + 'static) {
        lock_unpoisoned(&self.delta_hooks).push(Arc::new(hook));
    }

    /// Run every registered epoch hook for the published delta. The
    /// hook lists are snapshotted out of their locks first, so a hook
    /// that stages and publishes (or registers another hook) re-enters
    /// the engine without deadlocking on the non-reentrant hooks
    /// mutexes.
    fn notify_epoch(&self, delta: &PublishDelta) {
        let hooks: Vec<EpochHook> = lock_unpoisoned(&self.epoch_hooks).clone();
        for hook in &hooks {
            hook(delta.epoch);
        }
        let hooks: Vec<DeltaHook> = lock_unpoisoned(&self.delta_hooks).clone();
        for hook in &hooks {
            hook(delta);
        }
    }

    /// Set the dirty-coverage fraction at which [`LiveEngine::publish`]
    /// abandons per-segment rebuilding for one wholesale substrate
    /// rebuild. When a batch's dirty set covers at least this fraction
    /// of the precomputed segments, the incremental path would rebuild
    /// (nearly) everything anyway while still paying the per-segment
    /// bookkeeping — the honest degenerate case of exact user-CF
    /// invalidation over a dense cohort, where `BENCH_ingest.json`
    /// showed incremental publishing *losing* to a full rebuild.
    ///
    /// Defaults to [`DEFAULT_FULL_REBUILD_FRACTION`]. Values above `1.0`
    /// disable the fallback; `0.0` makes any batch that dirties at
    /// least one *precomputed segment* rebuild wholesale (a batch
    /// touching only users outside the serving set still takes the
    /// incremental path — there is nothing to rebuild wholesale for).
    /// Either way results stay bit-identical — only the rebuild
    /// strategy changes (regression-tested).
    pub fn with_full_rebuild_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction >= 0.0 && fraction.is_finite(),
            "fraction must be finite and non-negative"
        );
        self.full_rebuild_fraction = fraction;
        self
    }

    /// The configured full-rebuild fallback fraction.
    pub fn full_rebuild_fraction(&self) -> f64 {
        self.full_rebuild_fraction
    }

    /// The population-affinity index this engine serves from.
    pub fn population(&self) -> &'a PopulationAffinity {
        self.population
    }

    /// The configured preference model.
    pub fn model(&self) -> LiveModel {
        self.model
    }

    /// The currently-published epoch number.
    pub fn epoch(&self) -> u64 {
        lock_unpoisoned(&self.current).state.epoch
    }

    /// Number of staged-but-unpublished delta keys.
    pub fn staged(&self) -> usize {
        lock_unpoisoned(&self.store).len()
    }

    /// Number of group-affinity views cached for the current epoch.
    pub fn cached_affinity_views(&self) -> usize {
        let cache = Arc::clone(&lock_unpoisoned(&self.current).cache);
        let n = lock_unpoisoned(&cache).len();
        n
    }

    /// The staging core every mutation path funnels through: duplicate
    /// check, atomic validation, WAL append (when attached), then the
    /// in-memory stage — in that order, so a batch that reaches the
    /// log always stages cleanly and a batch that fails validation
    /// never reaches the log. Caller holds the store lock, which
    /// serializes writers and keeps the log in staging order.
    fn stage_wal_batch(
        &self,
        store: &mut RatingStore,
        client_key: Option<u64>,
        upserts: &[Rating],
        retractions: &[(UserId, ItemId)],
    ) -> Result<StagedBatch, QueryError> {
        if let Some(key) = client_key {
            if let Some(batch_id) = lock_unpoisoned(&self.seen_keys).get(key) {
                return Ok(StagedBatch {
                    batch_id,
                    duplicate: true,
                });
            }
        }
        if upserts.is_empty() && retractions.is_empty() {
            return Ok(StagedBatch {
                batch_id: store.last_batch(),
                duplicate: false,
            });
        }
        for r in upserts {
            if !r.value.is_finite() {
                return Err(NonFiniteScore {
                    user: r.user,
                    item: r.item,
                    value: r.value as f64,
                }
                .into());
            }
        }
        let batch_id = store.allocate_batch_id();
        if let Some(wal) = &self.wal {
            let record = WalRecord::Batch {
                batch_id,
                client_key,
                upserts: upserts.to_vec(),
                retractions: retractions.to_vec(),
            };
            if let Err(e) = lock_unpoisoned(wal).append(&record) {
                self.enter_stall();
                return Err(QueryError::Wal {
                    detail: format!("append of batch {batch_id} failed: {e}"),
                });
            }
        }
        let staged = store
            .stage_batch(batch_id, upserts, retractions)
            .expect("validated finite above");
        debug_assert!(staged, "freshly allocated id cannot be a duplicate");
        if let Some(key) = client_key {
            lock_unpoisoned(&self.seen_keys).insert(key, batch_id);
        }
        Ok(StagedBatch {
            batch_id,
            duplicate: false,
        })
    }

    /// Stage rating upserts without publishing (keep-latest per
    /// `(user, item)` key). Non-finite values are rejected here, and
    /// with a WAL attached the batch is logged before it is staged.
    pub fn stage(&self, ratings: &[Rating]) -> Result<(), QueryError> {
        let mut store = lock_unpoisoned(&self.store);
        self.stage_wal_batch(&mut store, None, ratings, &[])?;
        Ok(())
    }

    /// Stage rating retractions without publishing (logged like
    /// [`LiveEngine::stage`] when a WAL is attached — which is why
    /// this can fail).
    pub fn stage_retractions(&self, pairs: &[(UserId, ItemId)]) -> Result<(), QueryError> {
        let mut store = lock_unpoisoned(&self.store);
        self.stage_wal_batch(&mut store, None, &[], pairs)?;
        Ok(())
    }

    /// Stage one batch of upserts and retractions under an optional
    /// client idempotency key.
    ///
    /// A key that was already staged makes the whole call a no-op
    /// returning [`StagedBatch::duplicate`] — the safety net that lets
    /// clients retry an ingest whose acknowledgement was lost without
    /// double-applying it. Keys are remembered across a bounded window
    /// (`SEEN_KEYS_CAP` keys) and survive crash recovery (they ride
    /// in the WAL batch records).
    pub fn stage_keyed(
        &self,
        client_key: Option<u64>,
        upserts: &[Rating],
        retractions: &[(UserId, ItemId)],
    ) -> Result<StagedBatch, QueryError> {
        let mut store = lock_unpoisoned(&self.store);
        self.stage_wal_batch(&mut store, client_key, upserts, retractions)
    }

    /// Stage `ratings` and publish everything staged as one epoch.
    pub fn ingest(&self, ratings: &[Rating]) -> Result<IngestReport, QueryError> {
        self.stage(ratings)?;
        self.publish()
    }

    /// Stage retractions and publish everything staged as one epoch.
    pub fn retract(&self, pairs: &[(UserId, ItemId)]) -> Result<IngestReport, QueryError> {
        self.stage_retractions(pairs)?;
        self.publish()
    }

    /// Durability and freshness snapshot: current epoch, WAL
    /// attachment and stall state, and how stale the published epoch
    /// is. The serving layer turns `wal_stalled` into *degraded mode*:
    /// reads keep being answered from the last healthy epoch (with
    /// this snapshot's staleness attached) while mutations fail fast.
    pub fn health(&self) -> LiveHealth {
        let (staged, last_batch) = {
            let store = lock_unpoisoned(&self.store);
            (store.len(), store.last_batch())
        };
        LiveHealth {
            epoch: self.epoch(),
            wal_attached: self.wal.is_some(),
            wal_stalled: self.wal_stalled.load(Ordering::Acquire),
            staleness: self.staleness(),
            staged,
            last_batch,
        }
    }

    /// Time since the last successful publish (or engine creation/
    /// recovery), computed from the atomic publish timestamp.
    fn staleness(&self) -> Duration {
        let last = Duration::from_millis(self.last_publish_ms.load(Ordering::Acquire));
        self.created.elapsed().saturating_sub(last)
    }

    /// Lock-free degraded probe for read paths: `Some(staleness of the
    /// serving epoch)` while an attached WAL is stalled, `None` when
    /// healthy (or no WAL is attached).
    ///
    /// Unlike [`LiveEngine::health`], which snapshots the staging
    /// store, this takes no lock at all — a query response can
    /// annotate itself without queueing behind an in-flight publish
    /// that holds the store for the whole epoch rebuild, preserving
    /// the invariant that readers are never blocked beyond the `Arc`
    /// handoff.
    pub fn degraded_staleness(&self) -> Option<Duration> {
        (self.wal.is_some() && self.wal_stalled.load(Ordering::Acquire)).then(|| self.staleness())
    }

    /// Milliseconds since engine creation (the base of the degraded
    /// window accounting).
    fn engine_ms(&self) -> u64 {
        self.created.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
    }

    /// Latch the WAL stall and, if this opens a new degraded window,
    /// start its clock.
    fn enter_stall(&self) {
        self.wal_stalled.store(true, Ordering::Release);
        let now = self.engine_ms().max(1);
        if self
            .stall_began_ms
            .compare_exchange(0, now, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            self.degraded_windows.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Clear the WAL stall; if a degraded window was open, close it
    /// and fold its duration into the total.
    fn clear_stall(&self) {
        self.wal_stalled.store(false, Ordering::Release);
        let began = self.stall_began_ms.swap(0, Ordering::AcqRel);
        if began != 0 {
            let ms = self.engine_ms().saturating_sub(began);
            self.degraded_ms_total.fetch_add(ms, Ordering::Relaxed);
        }
    }

    /// The most recent per-epoch lineage records, oldest → newest, at
    /// most `limit` (the engine retains [`LINEAGE_CAP`]).
    pub fn lineage_recent(&self, limit: usize) -> Vec<EpochLineage> {
        let lineage = lock_unpoisoned(&self.lineage);
        let skip = lineage.len().saturating_sub(limit);
        lineage.iter().skip(skip).copied().collect()
    }

    /// Publish-pipeline aggregates since engine creation/recovery.
    pub fn lineage_summary(&self) -> LineageSummary {
        let mut degraded_ms = self.degraded_ms_total.load(Ordering::Relaxed);
        let began = self.stall_began_ms.load(Ordering::Acquire);
        if began != 0 {
            degraded_ms += self.engine_ms().saturating_sub(began);
        }
        LineageSummary {
            epoch: self.epoch(),
            publishes: self.publishes.load(Ordering::Relaxed),
            full_rebuilds: self.full_rebuilds.load(Ordering::Relaxed),
            last_publish_unix_ms: self.last_publish_unix_ms.load(Ordering::Relaxed),
            degraded_windows: self.degraded_windows.load(Ordering::Relaxed),
            degraded_ms_total: degraded_ms,
        }
    }

    /// Drain the staged deltas, rebuild the dirty preference segments,
    /// and atomically swap the result in as the next epoch (with a
    /// fresh, epoch-scoped group-affinity cache).
    ///
    /// Publishers serialize on the staging store; pinned readers are
    /// never blocked beyond the brief `Arc` handoff, and epochs they
    /// already pinned stay fully readable. An empty staging store
    /// publishes nothing and reports the current epoch.
    pub fn publish(&self) -> Result<IngestReport, QueryError> {
        // Hold the store lock for the whole publish: it serializes
        // writers, so `current` cannot move between the read and the
        // swap below.
        let mut store = lock_unpoisoned(&self.store);
        let batch = store.drain();
        let prev = Arc::clone(&lock_unpoisoned(&self.current).state);
        if batch.is_empty() {
            return Ok(IngestReport {
                epoch: prev.epoch,
                upserts: 0,
                retractions: 0,
                dirty_users: 0,
                dirty_pairs: 0,
                rebuilt_segments: 0,
                shared_segments: prev.substrate.users().len(),
                full_rebuild: false,
            });
        }
        // Standalone publishes get their own trace; a publish inside a
        // served ingest attributes its stages to the ingest span (the
        // nested guard is a no-op).
        let obs_span = crate::obs::span(crate::obs::next_trace_id(), crate::obs::SpanKind::Publish);
        let publish_start = Instant::now();
        let stage_start = Instant::now();
        let post = Arc::new(prev.matrix.apply_deltas(&batch.upserts, &batch.retractions));
        let total_segments = prev.substrate.users().len();
        // When the dirty set covers (nearly) every segment, per-segment
        // rebuilding is pure overhead: rebuild the substrate wholesale
        // instead (bit-identical — a clean user's recomputed segment
        // equals its shared one by the dirty-set contract). The dirty
        // computation itself is bounded by the same threshold: once the
        // fallback is inevitable, finishing the (expensive) co-rater
        // closure would only refine counts we no longer act on, so the
        // reported dirty figures are lower bounds when `full_rebuild`
        // is set.
        let cap = if self.full_rebuild_fraction <= 1.0 {
            ((self.full_rebuild_fraction * total_segments as f64).ceil() as usize).max(1)
        } else {
            usize::MAX
        };
        let (dirty, full_rebuild) =
            batch.dirty_set_bounded(&prev.matrix, &post, self.model.scope(), cap, |u| {
                prev.substrate.user_index(u).is_some()
            });
        let covered: Vec<UserId> = dirty
            .users
            .iter()
            .copied()
            .filter(|&u| prev.substrate.user_index(u).is_some())
            .collect();
        let stage_ns = elapsed_ns(stage_start);
        crate::obs::add_phase(crate::obs::Phase::Stage, stage_start.elapsed());
        let rebuild_start = Instant::now();
        let substrate = if full_rebuild {
            let users = prev.substrate.users();
            let items = prev.substrate.items();
            match self.model {
                LiveModel::Raw => Substrate::build_with(
                    &RawRatings(&post),
                    self.population,
                    items,
                    users,
                    &[],
                    self.build_options,
                )?,
                LiveModel::UserCf(cfg) => {
                    let cf = UserCfModel::fit_for(&post, cfg, users);
                    Substrate::build_with(
                        &cf,
                        self.population,
                        items,
                        users,
                        &[],
                        self.build_options,
                    )?
                }
            }
        } else {
            match self.model {
                LiveModel::Raw => prev.substrate.rebuild_dirty(&RawRatings(&post), &covered)?,
                LiveModel::UserCf(cfg) => {
                    let cf = UserCfModel::fit_for(&post, cfg, &covered);
                    prev.substrate.rebuild_dirty(&cf, &covered)?
                }
            }
        };
        let rebuild_ns = elapsed_ns(rebuild_start);
        crate::obs::add_phase(crate::obs::Phase::Rebuild, rebuild_start.elapsed());
        let epoch = prev.epoch + 1;
        let wal_start = Instant::now();
        // Commit point: the publish marker must be durable *before*
        // the swap makes the epoch observable (and before any caller
        // can acknowledge it). On failure nothing is applied — the
        // drained batch goes back into the staging store (its keys are
        // disjoint between upserts and retractions, so re-staging
        // reconstructs it exactly) and the engine reports itself
        // stalled; reads keep serving the previous epoch.
        if let Some(wal) = &self.wal {
            let commit = WalRecord::Publish {
                epoch,
                through_batch: store.last_batch(),
            };
            if let Err(e) = lock_unpoisoned(wal).append(&commit) {
                self.enter_stall();
                store
                    .stage_all(&batch.upserts)
                    .expect("re-staging values already staged once");
                for &(u, i) in &batch.retractions {
                    store.stage_retraction(u, i);
                }
                return Err(QueryError::Wal {
                    detail: format!("commit of epoch {epoch} failed: {e}"),
                });
            }
        }
        let wal_ns = if self.wal.is_some() {
            elapsed_ns(wal_start)
        } else {
            0
        };
        let swap_start = Instant::now();
        let state = Arc::new(EpochState {
            epoch,
            matrix: post,
            substrate: Arc::new(substrate),
        });
        {
            let mut cur = lock_unpoisoned(&self.current);
            cur.state = state;
            cur.cache = new_affinity_cache();
        }
        let swap_ns = elapsed_ns(swap_start);
        crate::obs::add_phase(crate::obs::Phase::Swap, swap_start.elapsed());
        self.clear_stall();
        self.last_publish_ms.store(
            self.created.elapsed().as_millis().min(u128::from(u64::MAX)) as u64,
            Ordering::Release,
        );
        let unix_ms = unix_now_ms();
        self.last_publish_unix_ms.store(unix_ms, Ordering::Relaxed);
        self.publishes.fetch_add(1, Ordering::Relaxed);
        if full_rebuild {
            self.full_rebuilds.fetch_add(1, Ordering::Relaxed);
        }
        // Release the staging store before notifying, so hooks may pin
        // or stage (a later publish sees their staging) without
        // deadlocking on the lock this publish still holds.
        drop(store);
        let dirty_users = dirty.num_users();
        let dirty_pairs = dirty.num_pairs();
        let rebuilt_segments = if full_rebuild {
            total_segments
        } else {
            covered.len()
        };
        {
            let mut lineage = lock_unpoisoned(&self.lineage);
            if lineage.len() >= LINEAGE_CAP {
                lineage.pop_front();
            }
            lineage.push_back(EpochLineage {
                epoch,
                unix_ms,
                upserts: batch.upserts.len(),
                retractions: batch.retractions.len(),
                dirty_users,
                dirty_pairs,
                rebuilt_segments,
                shared_segments: total_segments - rebuilt_segments,
                full_rebuild,
                stage_ns,
                rebuild_ns,
                wal_ns,
                swap_ns,
                total_ns: elapsed_ns(publish_start),
            });
        }
        self.notify_epoch(&PublishDelta {
            epoch,
            dirty: Arc::new(dirty),
            periods: Vec::new(),
            full_rebuild,
        });
        // Seal after the hooks so their survival/pump work accrues to
        // a standalone publish's span too.
        crate::obs::note_epoch(epoch);
        crate::obs::note_ok(true);
        drop(obs_span);
        Ok(IngestReport {
            epoch,
            upserts: batch.upserts.len(),
            retractions: batch.retractions.len(),
            dirty_users,
            dirty_pairs,
            rebuilt_segments,
            shared_segments: total_segments - rebuilt_segments,
            full_rebuild,
        })
    }

    /// Pin the current epoch: the returned handle keeps that epoch's
    /// matrix and substrate alive (and its affinity cache reachable)
    /// for as long as the caller holds it, independent of any further
    /// ingestion. Pinning is one brief lock and two `Arc` clones.
    pub fn pin(&self) -> PinnedEpoch<'a> {
        let (state, cache) = {
            let cur = lock_unpoisoned(&self.current);
            (Arc::clone(&cur.state), Arc::clone(&cur.cache))
        };
        let provider = EpochProvider {
            matrix: Arc::clone(&state.matrix),
            model: self.model,
        };
        PinnedEpoch {
            population: self.population,
            state,
            provider,
            cache,
        }
    }
}

/// One pinned epoch of a [`LiveEngine`]: a self-contained, immutable
/// snapshot to serve queries from.
///
/// The pin holds `Arc`s to the epoch's matrix, substrate and affinity
/// cache, so every query made through [`PinnedEpoch::engine`] reads one
/// consistent state end-to-end — concurrent publishes swap the *engine's*
/// current epoch but can never mutate a pinned one. Results are
/// bit-identical to a cold engine built from this epoch's ratings.
#[derive(Debug, Clone)]
pub struct PinnedEpoch<'a> {
    population: &'a PopulationAffinity,
    state: Arc<EpochState>,
    provider: EpochProvider,
    cache: AffinityCache,
}

impl PinnedEpoch<'_> {
    /// The pinned epoch number.
    pub fn epoch(&self) -> u64 {
        self.state.epoch
    }

    /// The pinned epoch's rating matrix.
    pub fn matrix(&self) -> &RatingMatrix {
        &self.state.matrix
    }

    /// The pinned epoch's substrate.
    pub fn substrate(&self) -> &Arc<Substrate> {
        &self.state.substrate
    }

    /// A warm [`GrecaEngine`] over this epoch's substrate, provider and
    /// (epoch-scoped) group-affinity cache. Engines are cheap views —
    /// build one per scope that needs to issue queries.
    pub fn engine(&self) -> GrecaEngine<'_> {
        GrecaEngine::with_substrate_and_cache(
            &self.provider,
            self.population,
            Arc::clone(&self.state.substrate),
            Arc::clone(&self.cache),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greca_affinity::TableAffinitySource;
    use greca_dataset::{Granularity, RatingMatrixBuilder, Timeline};

    fn rating(u: u32, i: u32, value: f32, ts: i64) -> Rating {
        Rating {
            user: UserId(u),
            item: ItemId(i),
            value,
            ts,
        }
    }

    fn world() -> (RatingMatrix, PopulationAffinity, Vec<ItemId>) {
        let mut b = RatingMatrixBuilder::new(4, 5);
        b.rate(UserId(0), ItemId(0), 5.0, 0)
            .rate(UserId(0), ItemId(2), 3.0, 0)
            .rate(UserId(1), ItemId(0), 4.0, 0)
            .rate(UserId(2), ItemId(3), 2.0, 0)
            .rate(UserId(3), ItemId(4), 4.0, 0);
        let matrix = b.build();
        let mut src = TableAffinitySource::new();
        src.set_static(UserId(0), UserId(1), 1.0)
            .set_static(UserId(0), UserId(2), 0.2)
            .set_static(UserId(1), UserId(2), 0.7)
            .set_static(UserId(2), UserId(3), 0.5);
        let tl = Timeline::discretize(0, 100, Granularity::Custom(50)).unwrap();
        let (p1, p2) = (tl.periods()[0], tl.periods()[1]);
        src.set_periodic(UserId(0), UserId(1), p1.start, 0.8)
            .set_periodic(UserId(1), UserId(2), p1.start, 0.9)
            .set_periodic(UserId(0), UserId(1), p2.start, 0.7);
        let users: Vec<UserId> = (0..4).map(UserId).collect();
        let pop = PopulationAffinity::build(&src, &users, &tl);
        let items: Vec<ItemId> = (0..5).map(ItemId).collect();
        (matrix, pop, items)
    }

    #[test]
    fn epochs_increment_and_empty_publish_is_a_noop() {
        let (matrix, pop, items) = world();
        let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
        assert_eq!(live.epoch(), 0);
        let noop = live.publish().unwrap();
        assert_eq!(noop.epoch, 0);
        assert_eq!(noop.rebuilt_segments, 0);
        assert_eq!(noop.shared_segments, 4);
        let r = live.ingest(&[rating(2, 1, 5.0, 10)]).unwrap();
        assert_eq!(r.epoch, 1);
        assert_eq!(live.epoch(), 1);
        assert_eq!((r.upserts, r.retractions), (1, 0));
        assert_eq!(r.rebuilt_segments, 1, "raw model dirties only u2");
        assert_eq!(r.shared_segments, 3);
        let r = live.retract(&[(UserId(2), ItemId(1))]).unwrap();
        assert_eq!(r.epoch, 2);
        assert_eq!((r.upserts, r.retractions), (0, 1));
    }

    #[test]
    fn pinned_epoch_is_immune_to_later_ingestion() {
        let (matrix, pop, items) = world();
        let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
        let group = Group::new(vec![UserId(0), UserId(1)]).unwrap();
        let pin0 = live.pin();
        let before = pin0
            .engine()
            .query(&group)
            .items(&items)
            .top(3)
            .run()
            .unwrap();
        // A rating that reorders u1's list.
        live.ingest(&[rating(1, 4, 5.0, 10)]).unwrap();
        let again = pin0
            .engine()
            .query(&group)
            .items(&items)
            .top(3)
            .run()
            .unwrap();
        assert_eq!(before, again, "pinned epoch must stay bit-identical");
        assert_eq!(pin0.epoch(), 0);
        assert_eq!(pin0.matrix().get(UserId(1), ItemId(4)), None);
        // A fresh pin sees the new epoch.
        let pin1 = live.pin();
        assert_eq!(pin1.epoch(), 1);
        assert_eq!(pin1.matrix().get(UserId(1), ItemId(4)), Some(5.0));
        let after = pin1
            .engine()
            .query(&group)
            .items(&items)
            .top(3)
            .run()
            .unwrap();
        assert_ne!(before, after, "the new rating must be visible");
        // Structural sharing across the swap: u0 was clean.
        assert!(pin0
            .substrate()
            .shares_segment_with(pin1.substrate(), UserId(0)));
        assert!(!pin0
            .substrate()
            .shares_segment_with(pin1.substrate(), UserId(1)));
        assert!(pin0.substrate().shares_affinity_with(pin1.substrate()));
    }

    #[test]
    fn lineage_records_every_publish_with_timings() {
        let (matrix, pop, items) = world();
        let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
        assert_eq!(live.lineage_summary().publishes, 0);
        assert!(live.lineage_recent(10).is_empty());
        live.ingest(&[rating(2, 4, 4.0, 10)]).unwrap();
        live.retract(&[(UserId(2), ItemId(4))]).unwrap();
        // An empty drain publishes nothing and must leave no lineage.
        live.publish().unwrap();
        let summary = live.lineage_summary();
        assert_eq!((summary.epoch, summary.publishes), (2, 2));
        assert_eq!(summary.full_rebuilds, 0);
        assert!(summary.last_publish_unix_ms > 0);
        assert_eq!(summary.degraded_windows, 0);
        let recent = live.lineage_recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].epoch, 1);
        assert_eq!((recent[0].upserts, recent[0].retractions), (1, 0));
        assert_eq!((recent[1].upserts, recent[1].retractions), (0, 1));
        assert_eq!(recent[1].epoch, 2);
        for l in &recent {
            assert!(l.total_ns >= l.rebuild_ns);
            assert!(l.rebuild_ns > 0, "a rebuild takes nonzero time");
            assert_eq!(l.wal_ns, 0, "no WAL attached");
            assert_eq!(l.rebuilt_segments, 1);
            assert_eq!(l.shared_segments, 3);
        }
        // `limit` trims from the oldest side.
        let newest = live.lineage_recent(1);
        assert_eq!(newest.len(), 1);
        assert_eq!(newest[0].epoch, 2);
    }

    #[test]
    fn usercf_model_propagates_to_coraters() {
        let (matrix, pop, items) = world();
        let live = LiveEngine::new(
            &pop,
            LiveModel::UserCf(CfConfig::default()),
            &matrix,
            &items,
        )
        .unwrap();
        // u0 co-rates i0 with u1; u3 has no co-raters and no empty row.
        let r = live.ingest(&[rating(0, 4, 4.5, 10)]).unwrap();
        assert!(r.dirty_users >= 3, "u0, co-rater u1, new co-rater u3");
        assert!(r.rebuilt_segments >= 3);
        assert!(r.dirty_pairs >= 1, "(u0,u3) now co-rate i4");
    }

    /// The degenerate-coverage fallback: when a batch dirties (nearly)
    /// every segment, publish rebuilds wholesale — reported honestly,
    /// with results bit-identical to the per-segment path and to a cold
    /// refit.
    #[test]
    fn full_rebuild_fallback_triggers_and_stays_identical() {
        let (matrix, pop, items) = world();
        let group = Group::new(vec![UserId(0), UserId(1)]).unwrap();
        let cfg = CfConfig::default();
        // A u0 rating dirties u0 plus co-raters u1 (i0) and u3 (new
        // co-rating on i4): 3 of 4 segments.
        let batch = [rating(0, 4, 4.5, 10)];
        let fallback = LiveEngine::new(&pop, LiveModel::UserCf(cfg), &matrix, &items)
            .unwrap()
            .with_full_rebuild_fraction(0.5);
        let incremental = LiveEngine::new(&pop, LiveModel::UserCf(cfg), &matrix, &items)
            .unwrap()
            .with_full_rebuild_fraction(1.1); // > 1.0 disables the fallback
        assert_eq!(fallback.full_rebuild_fraction(), 0.5);
        let r_fb = fallback.ingest(&batch).unwrap();
        let r_inc = incremental.ingest(&batch).unwrap();
        assert!(r_fb.full_rebuild, "3/4 coverage must trip a 0.5 threshold");
        assert!(!r_inc.full_rebuild, "disabled fallback stays incremental");
        assert_eq!((r_fb.rebuilt_segments, r_fb.shared_segments), (4, 0));
        assert!(r_inc.rebuilt_segments >= 3 && r_inc.shared_segments >= 1);
        // The fallback may stop counting early (its dirty figures are
        // documented lower bounds); it can never exceed the full count.
        assert!(r_fb.dirty_users >= 2 && r_fb.dirty_users <= r_inc.dirty_users);
        let q = |live: &LiveEngine<'_>| {
            live.pin()
                .engine()
                .query(&group)
                .items(&items)
                .top(3)
                .run()
                .unwrap()
        };
        assert_eq!(q(&fallback), q(&incremental));
        // …and identical to a cold engine refit from the final ratings.
        let final_matrix = fallback.pin().matrix().clone();
        let cold_model = UserCfModel::fit(&final_matrix, cfg);
        let cold = crate::query::GrecaEngine::new(&cold_model, &pop);
        assert_eq!(
            q(&fallback),
            cold.query(&group).items(&items).top(3).run().unwrap()
        );
    }

    /// Sparse batches must keep the incremental path at the default
    /// threshold — the fallback exists for degenerate coverage only.
    #[test]
    fn default_threshold_keeps_sparse_batches_incremental() {
        let (matrix, pop, items) = world();
        let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
        assert_eq!(live.full_rebuild_fraction(), DEFAULT_FULL_REBUILD_FRACTION);
        let r = live.ingest(&[rating(2, 1, 5.0, 10)]).unwrap();
        assert!(!r.full_rebuild, "1/4 coverage stays incremental");
        assert_eq!(r.rebuilt_segments, 1);
        // A batch touching every user's row under the raw model covers
        // 4/4 → wholesale.
        let r = live
            .ingest(&[
                rating(0, 1, 1.0, 11),
                rating(1, 1, 2.0, 11),
                rating(2, 2, 3.0, 11),
                rating(3, 1, 4.0, 11),
            ])
            .unwrap();
        assert!(r.full_rebuild, "full coverage rebuilds wholesale");
        assert_eq!((r.rebuilt_segments, r.shared_segments), (4, 0));
    }

    #[test]
    fn publish_hooks_observe_epoch_swaps() {
        let (matrix, pop, items) = world();
        let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        live.on_publish(move |e| sink.lock().unwrap().push(e));
        // Empty publishes swap nothing and notify nobody.
        live.publish().unwrap();
        assert!(seen.lock().unwrap().is_empty());
        live.ingest(&[rating(2, 1, 5.0, 10)]).unwrap();
        live.ingest(&[rating(1, 1, 4.0, 11)]).unwrap();
        assert_eq!(*seen.lock().unwrap(), vec![1, 2]);
        // Multiple hooks all fire.
        let also = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&also);
        live.on_publish(move |e| sink.lock().unwrap().push(e));
        live.ingest(&[rating(0, 1, 2.0, 12)]).unwrap();
        assert_eq!(*seen.lock().unwrap(), vec![1, 2, 3]);
        assert_eq!(*also.lock().unwrap(), vec![3]);
    }

    #[test]
    fn staging_defers_publication() {
        let (matrix, pop, items) = world();
        let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
        live.stage(&[rating(0, 1, 2.0, 5), rating(0, 1, 3.5, 6)])
            .unwrap();
        live.stage_retractions(&[(UserId(2), ItemId(3))]).unwrap();
        assert_eq!(live.staged(), 2, "keep-latest per key");
        assert_eq!(live.epoch(), 0);
        let r = live.publish().unwrap();
        assert_eq!(live.staged(), 0);
        assert_eq!(r.epoch, 1);
        assert_eq!((r.upserts, r.retractions), (1, 1));
        let pin = live.pin();
        assert_eq!(pin.matrix().get(UserId(0), ItemId(1)), Some(3.5));
        assert_eq!(pin.matrix().get(UserId(2), ItemId(3)), None);
    }

    #[test]
    fn non_finite_ingest_rejected_before_staging_state_changes() {
        let (matrix, pop, items) = world();
        let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
        // A valid rating ahead of the poisoned one must not be staged
        // either — a rejected batch is all-or-nothing, so it cannot
        // leak into a later unrelated publish.
        let err = live
            .ingest(&[rating(2, 0, 4.0, 4), rating(0, 1, f32::NAN, 5)])
            .unwrap_err();
        assert!(matches!(err, QueryError::NonFiniteScore { .. }));
        assert_eq!(live.epoch(), 0, "nothing published");
        assert_eq!(live.staged(), 0, "nothing staged");
        let noop = live.publish().unwrap();
        assert_eq!(noop.epoch, 0, "no stale prefix to publish");
    }

    fn wal_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "greca-live-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn wal_replay_recovers_a_bit_identical_engine() {
        use crate::wal::{Wal, WalOptions};
        let (matrix, pop, items) = world();
        let dir = wal_dir("replay");
        let group = Group::new(vec![UserId(0), UserId(1)]).unwrap();
        let reference = {
            let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items)
                .unwrap()
                .with_wal(Wal::create(&dir, WalOptions::default()).unwrap());
            live.ingest(&[rating(2, 1, 5.0, 10)]).unwrap();
            live.stage_keyed(
                Some(77),
                &[rating(1, 4, 4.0, 11)],
                &[(UserId(2), ItemId(1))],
            )
            .unwrap();
            live.publish().unwrap();
            // A staged-but-unpublished tail batch.
            live.stage(&[rating(0, 3, 2.5, 12)]).unwrap();
            assert_eq!(live.epoch(), 2);
            let h = live.health();
            assert!(h.wal_attached && !h.wal_stalled);
            assert_eq!(h.staged, 1);
            live.pin()
                .engine()
                .query(&group)
                .items(&items)
                .top(3)
                .run()
                .unwrap()
        };

        let (recovered, report) = LiveEngine::recover(
            &pop,
            LiveModel::Raw,
            &matrix,
            &items,
            BuildOptions::default(),
            &dir,
            WalOptions::default(),
        )
        .unwrap();
        assert_eq!(report.epoch, 2);
        assert_eq!(report.publishes_replayed, 2);
        assert_eq!(report.batches_replayed, 3);
        assert_eq!(report.duplicates_skipped, 0);
        assert_eq!(report.staged_tail, 1, "uncommitted tail restaged");
        assert!(!report.wal.torn_tail);
        let replayed = recovered
            .pin()
            .engine()
            .query(&group)
            .items(&items)
            .top(3)
            .run()
            .unwrap();
        assert_eq!(replayed, reference, "recovered epoch is bit-identical");
        // The recovered engine remembers the client key (idempotent
        // retry) and keeps appending to the same log.
        let retry = recovered
            .stage_keyed(Some(77), &[rating(1, 4, 4.0, 11)], &[])
            .unwrap();
        assert!(retry.duplicate);
        assert_eq!(recovered.staged(), 1, "duplicate staged nothing");
        recovered.publish().unwrap();
        assert_eq!(recovered.epoch(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_commit_restores_staging_and_reports_stalled() {
        use crate::fault::{FaultCtx, FaultPlan, IoFault};
        use crate::wal::{Wal, WalOptions};
        let (matrix, pop, items) = world();
        let dir = wal_dir("stall");
        // The commit fsync of the first publish fails; everything
        // after succeeds.
        let plan = Arc::new(FaultPlan::new(1).schedule(FaultCtx::WalSync, 0, IoFault::Fail));
        let options = WalOptions {
            fault: Some(plan),
            ..WalOptions::default()
        };
        let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items)
            .unwrap()
            .with_wal(Wal::create(&dir, options).unwrap());
        live.stage(&[rating(2, 1, 5.0, 10)]).unwrap();
        let err = live.publish().unwrap_err();
        assert!(matches!(err, QueryError::Wal { .. }), "{err:?}");
        // Nothing applied, nothing lost: the epoch is unchanged, the
        // batch is back in staging, and the engine reports degraded.
        assert_eq!(live.epoch(), 0);
        assert_eq!(live.staged(), 1);
        assert!(live.health().wal_stalled);
        // The lock-free probe read paths use agrees with health().
        assert!(live.degraded_staleness().is_some());
        // Lineage accounting sees the open degraded window.
        assert_eq!(live.lineage_summary().degraded_windows, 1);
        // The retry commits and clears the stall.
        let report = live.publish().unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.upserts, 1);
        assert!(!live.health().wal_stalled);
        assert_eq!(live.degraded_staleness(), None);
        // The window closed: its count survives and the publish both
        // landed in lineage (with a real WAL commit timing).
        let summary = live.lineage_summary();
        assert_eq!(summary.degraded_windows, 1);
        assert_eq!(summary.publishes, 1);
        let recent = live.lineage_recent(10);
        assert_eq!(recent.len(), 1);
        assert!(recent[0].wal_ns > 0, "WAL commit takes nonzero time");
        assert_eq!(
            live.pin().matrix().get(UserId(2), ItemId(1)),
            Some(5.0),
            "the restored batch published intact"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ratings_for_unknown_users_and_items_are_absorbed() {
        let (matrix, pop, items) = world();
        let live = LiveEngine::new(&pop, LiveModel::Raw, &matrix, &items).unwrap();
        // User 9 is outside the population universe; item 9 outside the
        // substrate's universe. Both land in the matrix (future-proof)
        // without disturbing any published segment.
        let r = live.ingest(&[rating(9, 9, 5.0, 10)]).unwrap();
        assert_eq!(r.epoch, 1);
        assert_eq!(r.rebuilt_segments, 0);
        assert_eq!(r.dirty_users, 1);
        let pin = live.pin();
        assert_eq!(pin.matrix().get(UserId(9), ItemId(9)), Some(5.0));
        let group = Group::new(vec![UserId(0), UserId(1)]).unwrap();
        assert!(pin
            .engine()
            .query(&group)
            .items(&items)
            .top(2)
            .run()
            .is_ok());
    }
}
