//! Durable write-ahead log for the live ingest path.
//!
//! Every mutation of a [`crate::live::LiveEngine`] running with a WAL
//! attached — staged upserts, retractions, and the publish marker that
//! commits them into a new epoch — is appended here *before* it is
//! applied in memory. After a crash, [`Wal::recover`] scans the log,
//! truncates a torn tail, and hands back the committed record prefix;
//! `LiveEngine::recover` replays it to an engine whose final epoch is
//! bit-identical to the pre-crash one.
//!
//! ## Frame format
//!
//! Segments are files `wal-NNNNNN.log` in one directory, rotated when
//! they exceed [`WalOptions::segment_bytes`]. Each frame is
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes]
//! ```
//!
//! where `crc32` is the IEEE CRC-32 of the payload and the payload is
//! one binary-encoded [`WalRecord`]. A frame whose length field is
//! implausible, whose checksum mismatches, or whose payload fails to
//! decode marks the end of the valid prefix: in the final segment that
//! is a *torn tail* (the expected debris of a crash mid-append) and is
//! truncated away; in any earlier segment it is corruption and
//! recovery refuses with an error rather than silently dropping
//! committed history.
//!
//! ## Commit point
//!
//! A batch is **committed** once the [`WalRecord::Publish`] frame
//! naming it (via `through_batch`) is durable — under the default
//! [`FsyncPolicy::OnCommit`], `append` fsyncs exactly on publish
//! frames, before the in-memory epoch swap happens and before any
//! client sees an acknowledgement. Batch frames ahead of the last
//! publish frame are an *uncommitted tail*: recovery restages them
//! (they were acknowledged only as "staged", never as published), and
//! replaying a batch id at or below the last committed one is a no-op
//! (see `RatingStore::stage_batch`), which makes crash-retry loops
//! idempotent end to end.
//!
//! ## Fault injection
//!
//! Every file write and fsync consults the optional
//! [`FaultPlan`] in [`WalOptions::fault`]
//! first. An injected torn write self-heals (the partial frame is
//! truncated back to the last frame boundary and the error surfaces
//! to the caller); an injected *crash* leaves the torn bytes on disk
//! — exactly what `kill -9` leaves — for recovery to find.

use crate::fault::{FaultCtx, FaultPlan, IoFault};
use greca_dataset::{ItemId, Rating, UserId};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Frame header size: `len` (u32) + `crc32` (u32).
pub const FRAME_HEADER: usize = 8;

/// Upper bound on one frame's payload; a length field above this is
/// treated as corruption rather than attempted as an allocation.
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// When the WAL flushes appended frames to durable media.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Fsync after every appended frame. Safest, slowest.
    Always,
    /// Fsync on [`WalRecord::Publish`] frames only — the commit
    /// point. Staged-batch frames ride to disk with the next commit.
    /// This is the default.
    #[default]
    OnCommit,
    /// Never fsync explicitly (the OS flushes whenever it likes).
    /// For benchmarks; a crash may lose acknowledged commits.
    Never,
}

/// Tuning and wiring for a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Rotate to a new segment file once the current one exceeds this
    /// many bytes (default 8 MiB).
    pub segment_bytes: u64,
    /// Fsync policy (default [`FsyncPolicy::OnCommit`]).
    pub fsync: FsyncPolicy,
    /// Optional deterministic fault plan consulted before every file
    /// write and fsync.
    pub fault: Option<Arc<FaultPlan>>,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 8 * 1024 * 1024,
            fsync: FsyncPolicy::default(),
            fault: None,
        }
    }
}

/// One durable event on the ingest path.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// One staged ingest/retract batch, assigned a monotonic
    /// engine-side `batch_id` (replay of a seen id is a no-op) and
    /// optionally carrying the client-supplied idempotency key that
    /// acknowledged it.
    Batch {
        /// Engine-assigned monotonic id.
        batch_id: u64,
        /// Client idempotency key, if the ingest supplied one.
        client_key: Option<u64>,
        /// Rating upserts in the batch.
        upserts: Vec<Rating>,
        /// `(user, item)` retractions in the batch.
        retractions: Vec<(UserId, ItemId)>,
    },
    /// The commit marker: epoch `epoch` published every staged batch
    /// with id ≤ `through_batch`.
    Publish {
        /// Epoch number the publish produced.
        epoch: u64,
        /// Highest batch id folded into that epoch.
        through_batch: u64,
    },
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial), const-table, no dependencies.
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (the checksum in every frame header).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Record codec.
// ---------------------------------------------------------------------

const TAG_BATCH: u8 = 1;
const TAG_PUBLISH: u8 = 2;

/// Serialize one record to its frame payload.
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match record {
        WalRecord::Batch {
            batch_id,
            client_key,
            upserts,
            retractions,
        } => {
            out.push(TAG_BATCH);
            out.extend_from_slice(&batch_id.to_le_bytes());
            match client_key {
                Some(k) => {
                    out.push(1);
                    out.extend_from_slice(&k.to_le_bytes());
                }
                None => out.push(0),
            }
            out.extend_from_slice(&(upserts.len() as u32).to_le_bytes());
            for r in upserts {
                out.extend_from_slice(&r.user.0.to_le_bytes());
                out.extend_from_slice(&r.item.0.to_le_bytes());
                out.extend_from_slice(&r.value.to_bits().to_le_bytes());
                out.extend_from_slice(&r.ts.to_le_bytes());
            }
            out.extend_from_slice(&(retractions.len() as u32).to_le_bytes());
            for (u, i) in retractions {
                out.extend_from_slice(&u.0.to_le_bytes());
                out.extend_from_slice(&i.0.to_le_bytes());
            }
        }
        WalRecord::Publish {
            epoch,
            through_batch,
        } => {
            out.push(TAG_PUBLISH);
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&through_batch.to_le_bytes());
        }
    }
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

/// Decode one frame payload. `None` on any malformed input — decoding
/// arbitrary bytes never panics and never over-allocates (element
/// counts are bounded by the remaining payload length first).
pub fn decode_record(payload: &[u8]) -> Option<WalRecord> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let record = match c.u8()? {
        TAG_BATCH => {
            let batch_id = c.u64()?;
            let client_key = match c.u8()? {
                0 => None,
                1 => Some(c.u64()?),
                _ => return None,
            };
            let n_up = c.u32()? as usize;
            if n_up.checked_mul(20)? > payload.len() - c.pos {
                return None;
            }
            let mut upserts = Vec::with_capacity(n_up);
            for _ in 0..n_up {
                upserts.push(Rating {
                    user: UserId(c.u32()?),
                    item: ItemId(c.u32()?),
                    value: f32::from_bits(c.u32()?),
                    ts: c.i64()?,
                });
            }
            let n_ret = c.u32()? as usize;
            if n_ret.checked_mul(8)? > payload.len() - c.pos {
                return None;
            }
            let mut retractions = Vec::with_capacity(n_ret);
            for _ in 0..n_ret {
                retractions.push((UserId(c.u32()?), ItemId(c.u32()?)));
            }
            WalRecord::Batch {
                batch_id,
                client_key,
                upserts,
                retractions,
            }
        }
        TAG_PUBLISH => WalRecord::Publish {
            epoch: c.u64()?,
            through_batch: c.u64()?,
        },
        _ => return None,
    };
    // Trailing garbage means the payload is not canonical: reject.
    (c.pos == payload.len()).then_some(record)
}

/// Wrap a payload in the on-disk frame: `[len][crc32][payload]`.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Try to decode the frame starting at `buf[offset..]`. Returns the
/// record and the offset one past the frame, or `None` if the bytes
/// there are not a whole, checksum-valid, decodable frame.
pub fn decode_frame_at(buf: &[u8], offset: usize) -> Option<(WalRecord, usize)> {
    let header = buf.get(offset..offset + FRAME_HEADER)?;
    let len = u32::from_le_bytes(header[0..4].try_into().ok()?);
    let sum = u32::from_le_bytes(header[4..8].try_into().ok()?);
    if len > MAX_FRAME_BYTES {
        return None;
    }
    let start = offset + FRAME_HEADER;
    let payload = buf.get(start..start + len as usize)?;
    if crc32(payload) != sum {
        return None;
    }
    let record = decode_record(payload)?;
    Some((record, start + len as usize))
}

// ---------------------------------------------------------------------
// The log itself.
// ---------------------------------------------------------------------

/// What [`Wal::recover`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoverySummary {
    /// Number of segment files scanned.
    pub segments: usize,
    /// Valid records recovered.
    pub records: usize,
    /// Total valid bytes scanned across all segments.
    pub bytes_scanned: u64,
    /// Bytes of torn tail truncated from the final segment.
    pub truncated_bytes: u64,
    /// Whether a torn tail was found (and truncated).
    pub torn_tail: bool,
}

/// An append-only, checksummed, segmented write-ahead log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    options: WalOptions,
    file: File,
    seg_index: u64,
    seg_bytes: u64,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.log"))
}

/// Sorted `(index, path)` list of the segment files in `dir`.
fn segment_files(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(idx) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((idx, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

impl Wal {
    /// Create a fresh log in `dir` (created if absent). Fails with
    /// [`io::ErrorKind::AlreadyExists`] if segment files are already
    /// present — use [`Wal::recover`] to reopen an existing log.
    pub fn create(dir: impl AsRef<Path>, options: WalOptions) -> io::Result<Wal> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        if !segment_files(&dir)?.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "WAL segments already present in {} — use recover",
                    dir.display()
                ),
            ));
        }
        let file = Self::open_segment(&dir, 0)?;
        Ok(Wal {
            dir,
            options,
            file,
            seg_index: 0,
            seg_bytes: 0,
        })
    }

    /// Reopen the log in `dir`, scan every segment, truncate a torn
    /// tail in the final segment, and return the log (positioned to
    /// append), the valid record prefix, and a summary. An invalid
    /// frame in a *non-final* segment is corruption of committed
    /// history and fails with [`io::ErrorKind::InvalidData`].
    pub fn recover(
        dir: impl AsRef<Path>,
        options: WalOptions,
    ) -> io::Result<(Wal, Vec<WalRecord>, RecoverySummary)> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let segments = segment_files(&dir)?;
        if segments.is_empty() {
            let wal = Wal::create(&dir, options)?;
            return Ok((wal, Vec::new(), RecoverySummary::default()));
        }

        // Committed history must be contiguous: a missing middle
        // segment (deleted, lost, restored from a partial backup)
        // would otherwise be silently concatenated into a gapped
        // replay — the same class of corruption as an invalid frame
        // in a non-final segment, and refused the same way.
        let first = segments[0].0;
        for (i, (index, _)) in segments.iter().enumerate() {
            let expected = first + i as u64;
            if *index != expected {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "WAL segment gap: expected wal-{expected:06}.log, found wal-{index:06}.log"
                    ),
                ));
            }
        }

        let mut records = Vec::new();
        let mut summary = RecoverySummary {
            segments: segments.len(),
            ..RecoverySummary::default()
        };
        let last = segments.len() - 1;
        let mut last_seg_valid_bytes = 0u64;
        for (i, (index, path)) in segments.iter().enumerate() {
            let mut buf = Vec::new();
            File::open(path)?.read_to_end(&mut buf)?;
            let mut offset = 0usize;
            while offset < buf.len() {
                match decode_frame_at(&buf, offset) {
                    Some((record, next)) => {
                        records.push(record);
                        offset = next;
                    }
                    None => {
                        if i != last {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!(
                                    "corrupt WAL frame in non-final segment {index} at offset {offset}",
                                ),
                            ));
                        }
                        summary.torn_tail = true;
                        summary.truncated_bytes = (buf.len() - offset) as u64;
                        let f = OpenOptions::new().write(true).open(path)?;
                        f.set_len(offset as u64)?;
                        f.sync_all()?;
                        break;
                    }
                }
            }
            summary.bytes_scanned += offset as u64;
            if i == last {
                last_seg_valid_bytes = offset as u64;
            }
        }
        summary.records = records.len();

        let (seg_index, last_path) = segments[last].clone();
        let mut file = OpenOptions::new().write(true).open(&last_path)?;
        file.seek(SeekFrom::Start(last_seg_valid_bytes))?;
        Ok((
            Wal {
                dir,
                options,
                file,
                seg_index,
                seg_bytes: last_seg_valid_bytes,
            },
            records,
            summary,
        ))
    }

    fn open_segment(dir: &Path, index: u64) -> io::Result<File> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(segment_path(dir, index))?;
        // Make the new directory entry durable too (without this a
        // crash can lose the whole segment file, not just its tail).
        File::open(dir)?.sync_all()?;
        Ok(file)
    }

    fn fault(&self, ctx: FaultCtx) -> Option<IoFault> {
        FaultPlan::maybe_sleep(self.options.fault.as_ref().and_then(|p| p.decide(ctx)))
    }

    /// Append one record. The frame is fully written (or fully backed
    /// out) before this returns `Ok`; whether it is also *durable*
    /// depends on [`FsyncPolicy`] — under the default `OnCommit`,
    /// [`WalRecord::Publish`] frames are fsynced before returning.
    ///
    /// On a short write (injected or real) the partial frame is
    /// truncated back to the previous frame boundary, so the log
    /// never accumulates garbage between valid frames. The one
    /// exception is an injected [`IoFault::Crash`], which leaves the
    /// torn bytes exactly as a killed process would.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        let _wal = crate::obs::phase(crate::obs::Phase::WalAppend);
        let frame = encode_frame(&encode_record(record));
        self.rotate_if_needed(frame.len() as u64)?;
        let pre = self.seg_bytes;

        match self.fault(FaultCtx::WalWrite) {
            None => {
                if let Err(e) = self.file.write_all(&frame) {
                    self.heal_to(pre);
                    return Err(e);
                }
            }
            Some(f @ IoFault::Torn { .. }) => {
                let keep = f.torn_keep(frame.len());
                let _ = self.file.write_all(&frame[..keep]);
                self.heal_to(pre);
                return Err(f.to_io_error());
            }
            Some(f @ IoFault::Crash { .. }) => {
                // Leave the torn prefix on disk — this is `kill -9`.
                let keep = f.torn_keep(frame.len());
                let _ = self.file.write_all(&frame[..keep]);
                let _ = self.file.flush();
                return Err(f.to_io_error());
            }
            Some(f) => return Err(f.to_io_error()),
        }
        self.seg_bytes = pre + frame.len() as u64;

        let commit = matches!(record, WalRecord::Publish { .. });
        let need_sync = match self.options.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::OnCommit => commit,
            FsyncPolicy::Never => false,
        };
        if need_sync {
            self.sync()?;
        }
        Ok(())
    }

    /// Best-effort restore of the segment to `offset` bytes after a
    /// failed append (truncate the partial frame, re-seat the cursor).
    fn heal_to(&mut self, offset: u64) {
        let _ = self.file.set_len(offset);
        let _ = self.file.seek(SeekFrom::Start(offset));
    }

    /// Flush appended frames to durable media (subject to the fault
    /// plan's `wal_sync` channel).
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some(f) = self.fault(FaultCtx::WalSync) {
            return Err(f.to_io_error());
        }
        self.file.sync_data()
    }

    fn rotate_if_needed(&mut self, incoming: u64) -> io::Result<()> {
        if self.seg_bytes == 0 || self.seg_bytes + incoming <= self.options.segment_bytes {
            return Ok(());
        }
        // Seal the full segment before the new one takes writes.
        if self.options.fsync != FsyncPolicy::Never {
            self.sync()?;
        }
        let next = self.seg_index + 1;
        self.file = Self::open_segment(&self.dir, next)?;
        self.seg_index = next;
        self.seg_bytes = 0;
        Ok(())
    }

    /// Directory holding the segment files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Index of the segment currently taking appends.
    pub fn segment_index(&self) -> u64 {
        self.seg_index
    }

    /// Valid bytes in the current segment.
    pub fn segment_bytes(&self) -> u64 {
        self.seg_bytes
    }

    /// The options the log was opened with.
    pub fn options(&self) -> &WalOptions {
        &self.options
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "greca-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn batch(id: u64, n: u32) -> WalRecord {
        WalRecord::Batch {
            batch_id: id,
            client_key: id.is_multiple_of(2).then_some(id * 7),
            upserts: (0..n)
                .map(|i| Rating {
                    user: UserId(i),
                    item: ItemId(i * 3),
                    value: i as f32 * 0.5,
                    ts: i as i64 * 100,
                })
                .collect(),
            retractions: vec![(UserId(n), ItemId(0))],
        }
    }

    #[test]
    fn codec_round_trips() {
        for record in [
            batch(0, 0),
            batch(1, 5),
            WalRecord::Publish {
                epoch: 3,
                through_batch: 9,
            },
        ] {
            let payload = encode_record(&record);
            assert_eq!(decode_record(&payload), Some(record.clone()));
            let framed = encode_frame(&payload);
            let (decoded, next) = decode_frame_at(&framed, 0).unwrap();
            assert_eq!(decoded, record);
            assert_eq!(next, framed.len());
        }
    }

    #[test]
    fn decoder_rejects_trailing_garbage_and_bad_tags() {
        let mut payload = encode_record(&batch(2, 1));
        payload.push(0);
        assert_eq!(decode_record(&payload), None);
        assert_eq!(decode_record(&[99]), None);
        assert_eq!(decode_record(&[]), None);
        // A count field larger than the remaining bytes must not
        // allocate or panic.
        let mut huge = vec![TAG_BATCH];
        huge.extend_from_slice(&7u64.to_le_bytes());
        huge.push(0);
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_record(&huge), None);
    }

    #[test]
    fn append_recover_round_trip_with_rotation() {
        let dir = tmpdir("rotate");
        let options = WalOptions {
            segment_bytes: 256,
            ..WalOptions::default()
        };
        let mut wal = Wal::create(&dir, options.clone()).unwrap();
        let records: Vec<WalRecord> = (0..20)
            .map(|i| {
                if i % 5 == 4 {
                    WalRecord::Publish {
                        epoch: i / 5 + 1,
                        through_batch: i,
                    }
                } else {
                    batch(i, 3)
                }
            })
            .collect();
        for r in &records {
            wal.append(r).unwrap();
        }
        assert!(wal.segment_index() > 0, "tiny segments must rotate");
        drop(wal);

        let (wal2, recovered, summary) = Wal::recover(&dir, options).unwrap();
        assert_eq!(recovered, records);
        assert!(!summary.torn_tail);
        assert_eq!(summary.records, records.len());
        assert_eq!(wal2.segment_index() + 1, summary.segments as u64);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_self_heals_and_log_stays_appendable() {
        let dir = tmpdir("torn");
        let plan = Arc::new(FaultPlan::new(3).schedule(
            FaultCtx::WalWrite,
            1,
            IoFault::Torn { keep_permille: 400 },
        ));
        let options = WalOptions {
            fault: Some(plan.clone()),
            ..WalOptions::default()
        };
        let mut wal = Wal::create(&dir, options.clone()).unwrap();
        wal.append(&batch(0, 2)).unwrap();
        assert!(wal.append(&batch(1, 2)).is_err(), "torn write surfaces");
        // Self-healed: the next append lands on a clean boundary.
        wal.append(&batch(2, 2)).unwrap();
        drop(wal);
        let (_, recovered, summary) = Wal::recover(&dir, WalOptions::default()).unwrap();
        assert_eq!(recovered, vec![batch(0, 2), batch(2, 2)]);
        assert!(!summary.torn_tail, "healed log has no torn tail");
        assert_eq!(plan.injected().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_leaves_torn_tail_for_recovery_to_truncate() {
        let dir = tmpdir("crash");
        let plan = Arc::new(FaultPlan::new(4).schedule(
            FaultCtx::WalWrite,
            2,
            IoFault::Crash { keep_permille: 500 },
        ));
        let options = WalOptions {
            fault: Some(plan.clone()),
            ..WalOptions::default()
        };
        let mut wal = Wal::create(&dir, options).unwrap();
        wal.append(&batch(0, 4)).unwrap();
        wal.append(&batch(1, 4)).unwrap();
        assert!(wal.append(&batch(2, 4)).is_err(), "crash surfaces");
        assert!(plan.is_crashed());
        // The "dead process" can no longer append.
        assert!(wal.append(&batch(3, 4)).is_err());
        drop(wal);

        let (mut wal2, recovered, summary) = Wal::recover(&dir, WalOptions::default()).unwrap();
        assert_eq!(recovered, vec![batch(0, 4), batch(1, 4)]);
        assert!(summary.torn_tail);
        assert!(summary.truncated_bytes > 0);
        // Recovered log continues cleanly from the truncation point.
        wal2.append(&batch(2, 4)).unwrap();
        drop(wal2);
        let (_, recovered, summary) = Wal::recover(&dir, WalOptions::default()).unwrap();
        assert_eq!(recovered, vec![batch(0, 4), batch(1, 4), batch(2, 4)]);
        assert!(!summary.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_full_and_failed_sync_write_nothing() {
        let dir = tmpdir("full");
        let plan = Arc::new(
            FaultPlan::new(5)
                .schedule(FaultCtx::WalWrite, 0, IoFault::DiskFull)
                .schedule(FaultCtx::WalSync, 0, IoFault::Fail),
        );
        let options = WalOptions {
            fsync: FsyncPolicy::Always,
            fault: Some(plan),
            ..WalOptions::default()
        };
        let mut wal = Wal::create(&dir, options).unwrap();
        assert!(wal.append(&batch(0, 1)).is_err(), "disk full");
        assert_eq!(wal.segment_bytes(), 0);
        // Second append writes, but its (first) fsync fails.
        assert!(wal.append(&batch(1, 1)).is_err(), "fsync failure surfaces");
        drop(wal);
        let (_, recovered, _) = Wal::recover(&dir, WalOptions::default()).unwrap();
        // The frame itself landed; only durability was unconfirmed.
        assert_eq!(recovered, vec![batch(1, 1)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_non_final_segment_is_an_error() {
        let dir = tmpdir("corrupt-mid");
        let options = WalOptions {
            segment_bytes: 64,
            ..WalOptions::default()
        };
        let mut wal = Wal::create(&dir, options.clone()).unwrap();
        for i in 0..6 {
            wal.append(&batch(i, 2)).unwrap();
        }
        assert!(wal.segment_index() >= 1);
        drop(wal);
        // Flip a byte in the middle of the first segment.
        let p = segment_path(&dir, 0);
        let mut bytes = fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&p, &bytes).unwrap();
        let err = Wal::recover(&dir, options).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_refuses_a_missing_middle_segment() {
        let dir = tmpdir("gap");
        let options = WalOptions {
            segment_bytes: 64,
            ..WalOptions::default()
        };
        let mut wal = Wal::create(&dir, options.clone()).unwrap();
        for i in 0..9 {
            wal.append(&batch(i, 2)).unwrap();
        }
        assert!(wal.segment_index() >= 2, "need a middle segment to lose");
        drop(wal);
        // A deleted middle segment is a hole in committed history, not
        // a torn tail: recovery must refuse rather than silently
        // concatenate the survivors into a gapped replay.
        fs::remove_file(segment_path(&dir, 1)).unwrap();
        let err = Wal::recover(&dir, options).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        assert!(err.to_string().contains("gap"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
