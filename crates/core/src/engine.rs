//! Legacy entry point, superseded by [`crate::query::GrecaEngine`].
//!
//! The original API was a free function taking eight positional
//! arguments plus a [`Prepared`] bundle of materialized inputs. It
//! survives as a thin deprecated shim over the same cold-path
//! construction the [`GroupQuery`](crate::query::GroupQuery) builder
//! performs, so downstream code migrates at its own pace while both
//! paths provably produce identical results (see `tests/engine_api.rs`
//! at the workspace root). The shim shares the builder's ingestion
//! contract: non-finite scores surface as
//! [`QueryError::NonFiniteScore`] (until 0.3 they escaped as a panic
//! from deep inside list construction — see the deprecation notes).

use crate::greca::{greca_topk, GrecaConfig, TopKResult};
use crate::lists::{ListLayout, MaterializedInputs};
use crate::naive::{naive_scores, naive_topk};
use crate::query::{materialize_inputs, QueryError};
use crate::ta::{ta_topk, TaConfig};
use greca_affinity::{AffinityMode, GroupAffinity, PopulationAffinity};
use greca_cf::PreferenceProvider;
use greca_consensus::ConsensusFunction;
use greca_dataset::{Group, ItemId};

/// Prepared per-(group, itemset, period, mode) inputs.
#[deprecated(
    since = "0.2.0",
    note = "use `GrecaEngine::query(...).prepare()` (a `PreparedQuery`) instead"
)]
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The group's affinity view at the query period.
    pub affinity: GroupAffinity,
    /// The owned sorted lists.
    pub inputs: MaterializedInputs,
    /// Whether relative preference is normalized by `|G|−1`.
    pub normalize_rpref: bool,
}

/// Build the inputs for one ad-hoc query.
#[deprecated(
    since = "0.2.0",
    note = "use `GrecaEngine::new(provider, population).query(group)` and the \
            fluent `GroupQuery` builder instead. Behavior change in 0.3: \
            non-finite provider scores now return \
            `Err(QueryError::NonFiniteScore)` (typed, with the offending \
            user/item) instead of panicking inside list construction"
)]
// The 8-positional-argument list is the reason this API was replaced;
// the arguments are preserved verbatim for the migration window.
#[allow(deprecated, clippy::too_many_arguments)]
pub fn prepare<P: PreferenceProvider + ?Sized>(
    provider: &P,
    population: &PopulationAffinity,
    group: &Group,
    items: &[ItemId],
    period_idx: usize,
    mode: AffinityMode,
    layout: ListLayout,
    normalize_rpref: bool,
) -> Result<Prepared, QueryError> {
    let (affinity, inputs) =
        materialize_inputs(provider, population, group, items, period_idx, mode, layout)?;
    Ok(Prepared {
        affinity,
        inputs,
        normalize_rpref,
    })
}

#[allow(deprecated)]
impl Prepared {
    /// Assemble directly from hand-built parts (e.g. the paper's running
    /// example, whose preference lists are given as tables rather than
    /// produced by a CF model).
    #[deprecated(
        since = "0.2.0",
        note = "use `PreparedQuery::from_parts` instead. Behavior change in \
                0.3: non-finite scores now return \
                `Err(QueryError::NonFiniteScore)` instead of panicking"
    )]
    pub fn from_parts(
        affinity: GroupAffinity,
        pref_lists: &[greca_cf::PreferenceList],
        layout: ListLayout,
        normalize_rpref: bool,
    ) -> Result<Self, QueryError> {
        let inputs = MaterializedInputs::build(pref_lists, &affinity, layout)?;
        Ok(Prepared {
            affinity,
            inputs,
            normalize_rpref,
        })
    }

    /// Run GRECA.
    pub fn greca(&self, consensus: ConsensusFunction, config: GrecaConfig) -> TopKResult {
        greca_topk(
            &self.inputs.views(),
            &self.affinity,
            consensus,
            self.normalize_rpref,
            config,
        )
    }

    /// Run the TA baseline.
    pub fn ta(&self, consensus: ConsensusFunction, config: TaConfig) -> TopKResult {
        ta_topk(
            &self.inputs.views(),
            &self.affinity,
            consensus,
            self.normalize_rpref,
            config,
        )
    }

    /// Run the naive full scan.
    pub fn naive(&self, consensus: ConsensusFunction, k: usize) -> TopKResult {
        naive_topk(
            &self.inputs.views(),
            &self.affinity,
            consensus,
            self.normalize_rpref,
            k,
        )
    }

    /// Exact scores of every candidate item, descending (no access
    /// accounting; use for verification and for the evaluation harness).
    pub fn exact_scores(&self, consensus: ConsensusFunction) -> Vec<(ItemId, f64)> {
        naive_scores(
            &self.inputs.views(),
            &self.affinity,
            consensus,
            self.normalize_rpref,
        )
        .0
    }
}
