//! High-level entry point: prepare a group's inputs once, run any
//! algorithm over them.
//!
//! Ad-hoc groups are not known in advance (§2.4), so this is the
//! "on-the-fly" path: given a preference provider (any CF model), the
//! population affinity index, a group, a candidate itemset and a query
//! period, [`prepare`] materializes the sorted lists GRECA scans;
//! [`Prepared`] then runs GRECA, TA or the naive scan over the *same*
//! inputs, which is what makes the `%SA` comparisons of §4.2 fair.

use crate::greca::{greca_topk, GrecaConfig, TopKResult};
use crate::lists::{GrecaInputs, ListLayout};
use crate::naive::{naive_scores, naive_topk};
use crate::ta::{ta_topk, TaConfig};
use greca_affinity::{AffinityMode, GroupAffinity, PopulationAffinity};
use greca_cf::{group_preference_lists, PreferenceProvider};
use greca_consensus::ConsensusFunction;
use greca_dataset::{Group, ItemId};

/// Prepared per-(group, itemset, period, mode) inputs.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The group's affinity view at the query period.
    pub affinity: GroupAffinity,
    /// The sorted lists.
    pub inputs: GrecaInputs,
    /// Whether relative preference is normalized by `|G|−1`.
    pub normalize_rpref: bool,
}

/// Build the inputs for one ad-hoc query.
pub fn prepare<P: PreferenceProvider + ?Sized>(
    provider: &P,
    population: &PopulationAffinity,
    group: &Group,
    items: &[ItemId],
    period_idx: usize,
    mode: AffinityMode,
    layout: ListLayout,
    normalize_rpref: bool,
) -> Prepared {
    let affinity = population.group_view(group, period_idx, mode);
    let pref_lists = group_preference_lists(provider, group, items);
    let inputs = GrecaInputs::build(&pref_lists, &affinity, layout);
    Prepared {
        affinity,
        inputs,
        normalize_rpref,
    }
}

impl Prepared {
    /// Assemble directly from hand-built parts (e.g. the paper's running
    /// example, whose preference lists are given as tables rather than
    /// produced by a CF model).
    pub fn from_parts(
        affinity: GroupAffinity,
        pref_lists: &[greca_cf::PreferenceList],
        layout: ListLayout,
        normalize_rpref: bool,
    ) -> Self {
        let inputs = GrecaInputs::build(pref_lists, &affinity, layout);
        Prepared {
            affinity,
            inputs,
            normalize_rpref,
        }
    }

    /// Run GRECA.
    pub fn greca(&self, consensus: ConsensusFunction, config: GrecaConfig) -> TopKResult {
        greca_topk(
            &self.inputs,
            &self.affinity,
            consensus,
            self.normalize_rpref,
            config,
        )
    }

    /// Run the TA baseline.
    pub fn ta(&self, consensus: ConsensusFunction, config: TaConfig) -> TopKResult {
        ta_topk(
            &self.inputs,
            &self.affinity,
            consensus,
            self.normalize_rpref,
            config,
        )
    }

    /// Run the naive full scan.
    pub fn naive(&self, consensus: ConsensusFunction, k: usize) -> TopKResult {
        naive_topk(
            &self.inputs,
            &self.affinity,
            consensus,
            self.normalize_rpref,
            k,
        )
    }

    /// Exact scores of every candidate item, descending (no access
    /// accounting; use for verification and for the evaluation harness).
    pub fn exact_scores(&self, consensus: ConsensusFunction) -> Vec<(ItemId, f64)> {
        naive_scores(
            &self.inputs,
            &self.affinity,
            consensus,
            self.normalize_rpref,
        )
        .0
    }
}
