//! Closed-interval arithmetic for score bounds.
//!
//! GRECA never knows an item's exact score until every component is read;
//! it works with `[lower, upper]` envelopes (§3.2's `ComputeLB` /
//! `ComputeUB`). All operations here are *sound*: if `x ∈ a` and `y ∈ b`
//! then `x ∘ y ∈ a ∘ b`. Soundness (not tightness) is what the
//! correctness proof needs; for fully-resolved inputs every operation
//! collapses to the exact scalar result, which a property test in
//! `greca-core` pins against the scalar scorer.

use serde::{Deserialize, Serialize};
use std::ops::Add;

/// A closed interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// Construct, checking `lo ≤ hi` in debug builds.
    #[inline]
    pub fn new(lo: f64, hi: f64) -> Self {
        debug_assert!(lo <= hi + 1e-9, "invalid interval [{lo}, {hi}]");
        Interval { lo, hi: hi.max(lo) }
    }

    /// A degenerate (exact) interval.
    #[inline]
    pub fn exact(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Whether the interval is (numerically) a single point.
    #[inline]
    pub fn is_exact(&self) -> bool {
        (self.hi - self.lo).abs() <= 1e-12
    }

    /// Width `hi − lo`.
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `v` lies inside the interval (with tolerance).
    #[inline]
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo - 1e-9 && v <= self.hi + 1e-9
    }

    /// Bitwise endpoint equality — the change-detection predicate of the
    /// incremental bound maintenance in [`crate::greca`]. Stricter than
    /// `==` (it distinguishes `-0.0` from `0.0`), which is the sound
    /// direction: a spurious "changed" only triggers a recomputation
    /// that reproduces the same value, never a stale bound.
    #[inline]
    pub fn bit_eq(&self, other: &Interval) -> bool {
        self.lo.to_bits() == other.lo.to_bits() && self.hi.to_bits() == other.hi.to_bits()
    }

    /// Scale by a non-negative constant.
    #[inline]
    pub fn scale(self, c: f64) -> Interval {
        debug_assert!(c >= 0.0, "scale must be non-negative");
        Interval::new(self.lo * c, self.hi * c)
    }

    /// Product of two **non-negative** intervals.
    #[inline]
    pub fn mul_nonneg(self, other: Interval) -> Interval {
        debug_assert!(
            self.lo >= -1e-9 && other.lo >= -1e-9,
            "operands must be ≥ 0"
        );
        Interval::new(
            self.lo.max(0.0) * other.lo.max(0.0),
            self.hi.max(0.0) * other.hi.max(0.0),
        )
    }

    /// `|a − b|` envelope.
    #[inline]
    pub fn abs_diff(self, other: Interval) -> Interval {
        let hi = (self.hi - other.lo).max(other.hi - self.lo).max(0.0);
        let lo = if self.hi < other.lo {
            other.lo - self.hi
        } else if other.hi < self.lo {
            self.lo - other.hi
        } else {
            0.0 // overlapping intervals can be equal
        };
        Interval::new(lo, hi)
    }

    /// `x²` envelope.
    #[inline]
    pub fn square(self) -> Interval {
        if self.lo <= 0.0 && self.hi >= 0.0 {
            Interval::new(0.0, self.lo.powi(2).max(self.hi.powi(2)))
        } else {
            let (a, b) = (self.lo.powi(2), self.hi.powi(2));
            Interval::new(a.min(b), a.max(b))
        }
    }

    /// `c − x` envelope (used for the `1 − dis` term).
    #[inline]
    pub fn sub_from(self, c: f64) -> Interval {
        Interval::new(c - self.hi, c - self.lo)
    }

    /// Element-wise minimum (for least-misery: `min` over members).
    #[inline]
    pub fn min_with(self, other: Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.min(other.hi))
    }

    /// Mean of a non-empty slice of intervals.
    pub fn mean(intervals: &[Interval]) -> Interval {
        assert!(!intervals.is_empty(), "mean of no intervals");
        let n = intervals.len() as f64;
        let lo = intervals.iter().map(|i| i.lo).sum::<f64>() / n;
        let hi = intervals.iter().map(|i| i.hi).sum::<f64>() / n;
        Interval::new(lo, hi)
    }

    /// Minimum of a non-empty slice of intervals.
    pub fn min_of(intervals: &[Interval]) -> Interval {
        assert!(!intervals.is_empty(), "min of no intervals");
        intervals
            .iter()
            .copied()
            .reduce(|a, b| a.min_with(b))
            .expect("non-empty")
    }
}

impl Add for Interval {
    type Output = Interval;

    /// Interval sum.
    #[inline]
    fn add(self, other: Interval) -> Interval {
        Interval::new(self.lo + other.lo, self.hi + other.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_eq_distinguishes_zero_signs() {
        let a = Interval::new(0.0, 1.0);
        assert!(a.bit_eq(&Interval::new(0.0, 1.0)));
        assert!(!a.bit_eq(&Interval::new(-0.0, 1.0)), "-0.0 is a change");
        assert!(!a.bit_eq(&Interval::new(0.0, 0.5)));
    }

    #[test]
    fn exact_intervals_are_points() {
        let i = Interval::exact(2.5);
        assert!(i.is_exact());
        assert_eq!(i.width(), 0.0);
        assert!(i.contains(2.5));
        assert!(!i.contains(2.6));
    }

    #[test]
    fn add_and_scale() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(-1.0, 3.0);
        let s = a + b;
        assert_eq!((s.lo, s.hi), (0.0, 5.0));
        let sc = a.scale(2.0);
        assert_eq!((sc.lo, sc.hi), (2.0, 4.0));
    }

    #[test]
    fn mul_nonneg_endpoints() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(0.5, 3.0);
        let p = a.mul_nonneg(b);
        assert_eq!((p.lo, p.hi), (0.5, 6.0));
    }

    #[test]
    fn abs_diff_overlapping_has_zero_lo() {
        let a = Interval::new(1.0, 3.0);
        let b = Interval::new(2.0, 4.0);
        let d = a.abs_diff(b);
        assert_eq!(d.lo, 0.0);
        assert_eq!(d.hi, 3.0);
    }

    #[test]
    fn abs_diff_disjoint_has_gap_lo() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(5.0, 6.0);
        let d = a.abs_diff(b);
        assert_eq!((d.lo, d.hi), (3.0, 5.0));
        // Symmetric.
        let d2 = b.abs_diff(a);
        assert_eq!((d2.lo, d2.hi), (3.0, 5.0));
    }

    #[test]
    fn abs_diff_exact_inputs_collapse() {
        let d = Interval::exact(4.0).abs_diff(Interval::exact(1.5));
        assert!(d.is_exact());
        assert_eq!(d.lo, 2.5);
    }

    #[test]
    fn square_spanning_zero() {
        let s = Interval::new(-2.0, 1.0).square();
        assert_eq!((s.lo, s.hi), (0.0, 4.0));
        let s2 = Interval::new(1.0, 3.0).square();
        assert_eq!((s2.lo, s2.hi), (1.0, 9.0));
        let s3 = Interval::new(-3.0, -1.0).square();
        assert_eq!((s3.lo, s3.hi), (1.0, 9.0));
    }

    #[test]
    fn sub_from_flips() {
        let i = Interval::new(0.25, 0.75).sub_from(1.0);
        assert_eq!((i.lo, i.hi), (0.25, 0.75));
        let j = Interval::new(0.0, 2.0).sub_from(1.0);
        assert_eq!((j.lo, j.hi), (-1.0, 1.0));
    }

    #[test]
    fn mean_and_min() {
        let xs = [Interval::new(0.0, 1.0), Interval::new(2.0, 4.0)];
        let m = Interval::mean(&xs);
        assert_eq!((m.lo, m.hi), (1.0, 2.5));
        let mn = Interval::min_of(&xs);
        assert_eq!((mn.lo, mn.hi), (0.0, 1.0));
    }

    #[test]
    fn soundness_sampling() {
        // Randomized containment check across the operations.
        let cases = [
            (Interval::new(0.0, 2.0), Interval::new(1.0, 3.0)),
            (Interval::new(0.5, 0.5), Interval::new(0.0, 4.0)),
            (Interval::new(2.0, 5.0), Interval::new(0.0, 1.0)),
        ];
        for (a, b) in cases {
            for &x in &[a.lo, (a.lo + a.hi) / 2.0, a.hi] {
                for &y in &[b.lo, (b.lo + b.hi) / 2.0, b.hi] {
                    assert!((a + b).contains(x + y));
                    assert!(a.mul_nonneg(b).contains(x * y));
                    assert!(a.abs_diff(b).contains((x - y).abs()));
                    assert!(a.square().contains(x * x));
                    assert!(a.sub_from(1.0).contains(1.0 - x));
                    assert!(a.min_with(b).contains(x.min(y)) || x.min(y) > a.min_with(b).hi);
                }
            }
        }
    }
}
