//! TA baseline: threshold algorithm with random accesses.
//!
//! §3.1 argues that a TA-style computation of a single item's complete
//! score is expensive: for item `i1` of the running example it needs 21
//! RAs — one per missing `apref` component and one per affinity entry per
//! member, *re-fetched per item without caching*. We reproduce that
//! accounting: each newly encountered item charges
//!
//! * `n − 1` RAs for the other members' `apref` values, and
//! * `n − 1` RAs per member per affinity kind — i.e.
//!   `n·(n−1)·(T+1)` RAs for the `T` periodic plus one static affinity
//!   list sets (21 for `n = 3`, `T = 2`: 3 apref + 3·6 affinity).
//!
//! TA keeps a top-k heap of exact scores and stops when no unseen item's
//! upper bound (from the cursors) can beat the current k-th best.

use crate::access::AccessStats;
use crate::greca::{StopReason, TopKItem, TopKResult};
use crate::interval::Interval;
use crate::lists::{GrecaInputs, ListKind};
use crate::score::BoundScorer;
use greca_affinity::GroupAffinity;
use greca_consensus::{ConsensusFunction, GroupScorer};
use greca_dataset::ItemId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// TA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaConfig {
    /// Result size.
    pub k: usize,
    /// When true, affinity components are fetched once and cached
    /// (cheaper); when false every item re-fetches them, matching the
    /// paper's §3.1 accounting. Default: false.
    pub cache_affinity: bool,
}

impl Default for TaConfig {
    /// The paper's default `k = 10` with per-item affinity re-fetching.
    fn default() -> Self {
        TaConfig::top(10)
    }
}

impl TaConfig {
    /// Paper-faithful configuration for a given `k`.
    pub fn top(k: usize) -> Self {
        TaConfig {
            k,
            cache_affinity: false,
        }
    }
}

/// Run the TA baseline.
pub fn ta_topk(
    inputs: &GrecaInputs<'_>,
    affinity: &GroupAffinity,
    consensus: ConsensusFunction,
    normalize_rpref: bool,
    config: TaConfig,
) -> TopKResult {
    assert!(config.k > 0, "k must be positive");
    let n = inputs.num_members;
    let k = config.k.min(inputs.num_items.max(1));
    let mut stats = AccessStats::new(inputs.total_entries());

    // Random-access side indexes (an index lookup is what an RA charges).
    let apref_index: Vec<HashMap<u32, f64>> = inputs
        .pref_lists
        .iter()
        .map(|l| l.iter().collect())
        .collect();

    let scorer = GroupScorer::new(affinity.clone(), consensus, normalize_rpref);
    let bound_scorer = BoundScorer::new(affinity, consensus, normalize_rpref);
    let exact_affs: Vec<Interval> = (0..affinity.num_pairs())
        .map(|p| Interval::exact(affinity.affinity(p)))
        .collect();
    // RA cost of the affinity components for one item: each member
    // fetches its n−1 pair entries from the static and each periodic
    // list set (the paper's accounting; §3.1's 6 RAs per member).
    let n_kinds = (!inputs.static_lists.is_empty()) as u64 + inputs.period_lists.len() as u64;
    let affinity_ras_per_item = (n as u64) * (n as u64 - 1) * n_kinds;
    let mut affinity_charged_once = false;

    let mut seen: HashSet<u32> = HashSet::new();
    let mut heap: Vec<(ItemId, f64)> = Vec::new(); // small k: sorted vec
    let mut positions = vec![0usize; n];
    let mut cursors: Vec<f64> = inputs
        .pref_lists
        .iter()
        .map(|l| l.first_score().unwrap_or(0.0))
        .collect();

    loop {
        let mut read_any = false;
        for (m, list) in inputs.pref_lists.iter().enumerate() {
            let pos = positions[m];
            if pos >= list.len() {
                continue;
            }
            let (id, score) = list.entry(pos);
            positions[m] = pos + 1;
            cursors[m] = score;
            stats.record_sa();
            read_any = true;
            debug_assert!(matches!(list.kind, ListKind::Preference { .. }));
            if !seen.insert(id) {
                continue;
            }
            // Complete the item's score by random access.
            let mut aprefs = vec![0.0f64; n];
            aprefs[m] = score;
            for (other, index) in apref_index.iter().enumerate() {
                if other == m {
                    continue;
                }
                stats.record_ra();
                aprefs[other] = *index.get(&id).unwrap_or(&0.0);
            }
            if !config.cache_affinity || !affinity_charged_once {
                stats.ra += affinity_ras_per_item;
                affinity_charged_once = true;
            }
            let s = scorer.score(&aprefs);
            heap.push((ItemId(id), s));
            heap.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("finite")
                    .then_with(|| a.0.cmp(&b.0))
            });
            heap.truncate(k);
        }
        if !read_any {
            return finish(heap, stats, StopReason::Exhausted);
        }
        // Threshold: the best score an unseen item could reach, with
        // apref components bounded by the cursors and exact affinities.
        if heap.len() == k {
            let any_exhausted = (0..n).any(|m| positions[m] >= inputs.pref_lists[m].len());
            if any_exhausted {
                return finish(heap, stats, StopReason::Exhausted);
            }
            let aprefs_iv: Vec<Interval> = cursors.iter().map(|&c| Interval::new(0.0, c)).collect();
            let threshold = bound_scorer.score_interval(&aprefs_iv, &exact_affs).hi;
            let kth = heap[k - 1].1;
            if threshold <= kth + 1e-12 {
                return finish(heap, stats, StopReason::Threshold);
            }
        }
    }
}

fn finish(heap: Vec<(ItemId, f64)>, stats: AccessStats, reason: StopReason) -> TopKResult {
    TopKResult {
        items: heap
            .into_iter()
            .map(|(item, s)| TopKItem { item, lb: s, ub: s })
            .collect(),
        stats,
        sweeps: 0,
        stop_reason: reason,
    }
}
