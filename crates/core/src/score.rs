//! Interval score model: `ComputeLB` / `ComputeUB` / `ComputeTh` (§3.2).
//!
//! Mirrors the exact scalar pipeline of `greca-consensus` over
//! [`Interval`]s:
//!
//! 1. per-pair affinity envelopes from component envelopes (sound because
//!    `GroupAffinity::affinity_from_components` is monotone in every
//!    component — Lemma 1's engine);
//! 2. member preference envelopes
//!    `pref_u = apref_u + Σ aff(u,v)·apref_v (normalized)`;
//! 3. the consensus envelope `F = w1·gpref + w2·(1 − dis)` where the
//!    non-monotone disagreement terms are handled with interval
//!    arithmetic, so bounds stay sound for **every** consensus function,
//!    not only the provably monotone ones.
//!
//! Degenerate (exact) inputs collapse to the scalar scorer's value; the
//! property suite pins this.

use crate::interval::Interval;
use greca_affinity::GroupAffinity;
use greca_consensus::{ConsensusFunction, DisagreementKind, GroupPreferenceKind};

/// Interval-valued scorer for one group/consensus configuration.
#[derive(Debug, Clone)]
pub struct BoundScorer<'a> {
    affinity: &'a GroupAffinity,
    consensus: ConsensusFunction,
    normalize_rpref: bool,
}

impl<'a> BoundScorer<'a> {
    /// Create a scorer consistent with a scalar
    /// [`greca_consensus::GroupScorer`] built from the same parts.
    pub fn new(
        affinity: &'a GroupAffinity,
        consensus: ConsensusFunction,
        normalize_rpref: bool,
    ) -> Self {
        BoundScorer {
            affinity,
            consensus,
            normalize_rpref,
        }
    }

    /// The group's affinity view.
    pub fn affinity(&self) -> &GroupAffinity {
        self.affinity
    }

    /// Envelope of one pair's affinity from per-component envelopes.
    ///
    /// `comps` holds one envelope per aggregated period. Monotonicity of
    /// the component fold makes the `(lo…, hi…)` evaluations the exact
    /// envelope ends.
    pub fn pair_affinity_interval(&self, static_iv: Interval, comps: &[Interval]) -> Interval {
        let los: Vec<f64> = comps.iter().map(|c| c.lo).collect();
        let his: Vec<f64> = comps.iter().map(|c| c.hi).collect();
        Interval::new(
            self.affinity.affinity_from_components(static_iv.lo, &los),
            self.affinity.affinity_from_components(static_iv.hi, &his),
        )
    }

    /// Member preference envelopes from apref envelopes (member order)
    /// and pair-affinity envelopes (group triangular pair order).
    pub fn member_pref_intervals(
        &self,
        aprefs: &[Interval],
        pair_affs: &[Interval],
    ) -> Vec<Interval> {
        let members = self.affinity.members();
        let n = members.len();
        debug_assert_eq!(aprefs.len(), n);
        debug_assert_eq!(pair_affs.len(), self.affinity.num_pairs());
        let norm = if self.normalize_rpref && n > 1 {
            1.0 / (n - 1) as f64
        } else {
            1.0
        };
        (0..n)
            .map(|u| {
                let mut rpref = Interval::exact(0.0);
                for v in 0..n {
                    if v == u {
                        continue;
                    }
                    let pair = self
                        .affinity
                        .pair_of(members[u], members[v])
                        .expect("group members");
                    rpref = rpref + pair_affs[pair].mul_nonneg(aprefs[v]);
                }
                aprefs[u] + rpref.scale(norm)
            })
            .collect()
    }

    /// The consensus envelope from member preference envelopes.
    pub fn consensus_interval(&self, prefs: &[Interval]) -> Interval {
        let gpref = match self.consensus.preference {
            GroupPreferenceKind::Average => Interval::mean(prefs),
            GroupPreferenceKind::LeastMisery => Interval::min_of(prefs),
        };
        let dis = match self.consensus.disagreement {
            DisagreementKind::NoDisagreement => Interval::exact(0.0),
            DisagreementKind::AveragePairwise => {
                let n = prefs.len();
                if n < 2 {
                    Interval::exact(0.0)
                } else {
                    let mut acc = Interval::exact(0.0);
                    for i in 0..n {
                        for j in (i + 1)..n {
                            acc = acc + prefs[i].abs_diff(prefs[j]);
                        }
                    }
                    acc.scale(2.0 / (n as f64 * (n as f64 - 1.0)))
                }
            }
            DisagreementKind::Variance => {
                let n = prefs.len();
                if n == 0 {
                    Interval::exact(0.0)
                } else {
                    let mean = Interval::mean(prefs);
                    let mut acc = Interval::exact(0.0);
                    for p in prefs {
                        // (p − mean) envelope, then squared.
                        let d = Interval::new(p.lo - mean.hi, p.hi - mean.lo);
                        acc = acc + d.square();
                    }
                    acc.scale(1.0 / n as f64)
                }
            }
        };
        gpref.scale(self.consensus.w1) + dis.sub_from(1.0).scale(self.consensus.w2())
    }

    /// Full envelope: aprefs + pair affinities → `F` envelope.
    pub fn score_interval(&self, aprefs: &[Interval], pair_affs: &[Interval]) -> Interval {
        let prefs = self.member_pref_intervals(aprefs, pair_affs);
        self.consensus_interval(&prefs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greca_affinity::AffinityMode;
    use greca_consensus::GroupScorer;
    use greca_dataset::UserId;

    fn view(mode: AffinityMode) -> GroupAffinity {
        GroupAffinity::new(
            vec![UserId(0), UserId(1), UserId(2)],
            mode,
            vec![1.0, 0.2, 0.3],
            vec![vec![0.8, 0.1, 0.2], vec![0.7, 0.1, 0.1]],
            vec![0.37, 0.3],
        )
    }

    fn all_consensus() -> Vec<ConsensusFunction> {
        vec![
            ConsensusFunction::average_preference(),
            ConsensusFunction::least_misery(),
            ConsensusFunction::pairwise_disagreement(0.8),
            ConsensusFunction::pairwise_disagreement(0.2),
            ConsensusFunction::variance_disagreement(0.5),
        ]
    }

    /// Exact inputs must reproduce the scalar scorer exactly.
    #[test]
    fn degenerate_intervals_match_scalar_scorer() {
        for mode in [
            AffinityMode::None,
            AffinityMode::StaticOnly,
            AffinityMode::Discrete,
            AffinityMode::continuous(),
        ] {
            let v = view(mode);
            for consensus in all_consensus() {
                for normalize in [true, false] {
                    let bound = BoundScorer::new(&v, consensus, normalize);
                    let scalar = GroupScorer::new(v.clone(), consensus, normalize);
                    let aprefs = [3.5, 1.0, 4.2];
                    let aprefs_iv: Vec<Interval> =
                        aprefs.iter().map(|&a| Interval::exact(a)).collect();
                    let pair_affs: Vec<Interval> = (0..v.num_pairs())
                        .map(|p| Interval::exact(v.affinity(p)))
                        .collect();
                    let iv = bound.score_interval(&aprefs_iv, &pair_affs);
                    let exact = scalar.score(&aprefs);
                    assert!(
                        iv.is_exact() && (iv.lo - exact).abs() < 1e-9,
                        "{mode:?}/{} exact {exact} vs [{}, {}]",
                        consensus.label(),
                        iv.lo,
                        iv.hi
                    );
                }
            }
        }
    }

    /// Widening any input envelope must keep the true score inside.
    #[test]
    fn envelopes_contain_true_scores() {
        let v = view(AffinityMode::Discrete);
        for consensus in all_consensus() {
            let bound = BoundScorer::new(&v, consensus, true);
            let scalar = GroupScorer::new(v.clone(), consensus, true);
            let truth = [3.5, 1.0, 4.2];
            let exact = scalar.score(&truth);
            // Envelope: apref_1 unknown in [0, 5]; pair (0,1) affinity
            // unknown in [floor, cap].
            let aprefs_iv = vec![
                Interval::exact(3.5),
                Interval::new(0.0, 5.0),
                Interval::exact(4.2),
            ];
            let pair_affs: Vec<Interval> = (0..v.num_pairs())
                .map(|p| {
                    if p == 0 {
                        Interval::new(v.affinity_floor(), v.affinity_cap())
                    } else {
                        Interval::exact(v.affinity(p))
                    }
                })
                .collect();
            // Truth uses the *actual* affinity, which lies inside the env.
            let iv = bound.score_interval(&aprefs_iv, &pair_affs);
            assert!(
                iv.contains(exact),
                "{}: {exact} ∉ [{}, {}]",
                consensus.label(),
                iv.lo,
                iv.hi
            );
        }
    }

    #[test]
    fn pair_affinity_interval_monotone_ends() {
        let v = view(AffinityMode::Discrete);
        let bs = BoundScorer::new(&v, ConsensusFunction::average_preference(), true);
        let iv = bs.pair_affinity_interval(
            Interval::new(0.2, 0.9),
            &[Interval::new(0.0, 1.0), Interval::new(0.1, 0.1)],
        );
        assert!(iv.lo <= iv.hi);
        // Exact components give exact affinity.
        let exact = bs.pair_affinity_interval(
            Interval::exact(0.5),
            &[Interval::exact(0.4), Interval::exact(0.1)],
        );
        assert!(exact.is_exact());
    }

    #[test]
    fn tightening_inputs_never_loosens_the_envelope() {
        let v = view(AffinityMode::Discrete);
        let bs = BoundScorer::new(&v, ConsensusFunction::pairwise_disagreement(0.5), true);
        let wide_aprefs = vec![Interval::new(0.0, 5.0); 3];
        let tight_aprefs = vec![
            Interval::new(1.0, 4.0),
            Interval::new(2.0, 3.0),
            Interval::new(0.5, 4.5),
        ];
        let affs: Vec<Interval> = (0..3).map(|p| Interval::exact(v.affinity(p))).collect();
        let wide = bs.score_interval(&wide_aprefs, &affs);
        let tight = bs.score_interval(&tight_aprefs, &affs);
        assert!(tight.lo >= wide.lo - 1e-12);
        assert!(tight.hi <= wide.hi + 1e-12);
    }

    #[test]
    fn singleton_group_consensus() {
        let v = GroupAffinity::new(
            vec![UserId(7)],
            AffinityMode::Discrete,
            vec![],
            vec![],
            vec![],
        );
        let bs = BoundScorer::new(&v, ConsensusFunction::pairwise_disagreement(0.5), true);
        let iv = bs.score_interval(&[Interval::exact(4.0)], &[]);
        // dis = 0, gpref = 4 → F = 0.5·4 + 0.5·1 = 2.5.
        assert!(iv.is_exact() && (iv.lo - 2.5).abs() < 1e-12);
    }
}
