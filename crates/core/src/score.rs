//! Interval score model: `ComputeLB` / `ComputeUB` / `ComputeTh` (§3.2).
//!
//! Mirrors the exact scalar pipeline of `greca-consensus` over
//! [`Interval`]s:
//!
//! 1. per-pair affinity envelopes from component envelopes (sound because
//!    `GroupAffinity::affinity_from_components` is monotone in every
//!    component — Lemma 1's engine);
//! 2. member preference envelopes
//!    `pref_u = apref_u + Σ aff(u,v)·apref_v (normalized)`;
//! 3. the consensus envelope `F = w1·gpref + w2·(1 − dis)` where the
//!    non-monotone disagreement terms are handled with interval
//!    arithmetic, so bounds stay sound for **every** consensus function,
//!    not only the provably monotone ones.
//!
//! Degenerate (exact) inputs collapse to the scalar scorer's value; the
//! property suite pins this.

use crate::interval::Interval;
use greca_affinity::GroupAffinity;
use greca_consensus::{ConsensusFunction, DisagreementKind, GroupPreferenceKind};

/// Interval-valued scorer for one group/consensus configuration.
#[derive(Debug, Clone)]
pub struct BoundScorer<'a> {
    affinity: &'a GroupAffinity,
    consensus: ConsensusFunction,
    normalize_rpref: bool,
}

impl<'a> BoundScorer<'a> {
    /// Create a scorer consistent with a scalar
    /// [`greca_consensus::GroupScorer`] built from the same parts.
    pub fn new(
        affinity: &'a GroupAffinity,
        consensus: ConsensusFunction,
        normalize_rpref: bool,
    ) -> Self {
        BoundScorer {
            affinity,
            consensus,
            normalize_rpref,
        }
    }

    /// The group's affinity view.
    pub fn affinity(&self) -> &GroupAffinity {
        self.affinity
    }

    /// Envelope of one pair's affinity from per-component envelopes.
    ///
    /// `comps` holds one envelope per aggregated period. Monotonicity of
    /// the component fold makes the `(lo…, hi…)` evaluations the exact
    /// envelope ends.
    pub fn pair_affinity_interval(&self, static_iv: Interval, comps: &[Interval]) -> Interval {
        let los: Vec<f64> = comps.iter().map(|c| c.lo).collect();
        let his: Vec<f64> = comps.iter().map(|c| c.hi).collect();
        Interval::new(
            self.affinity.affinity_from_components(static_iv.lo, &los),
            self.affinity.affinity_from_components(static_iv.hi, &his),
        )
    }

    /// Member preference envelopes from apref envelopes (member order)
    /// and pair-affinity envelopes (group triangular pair order).
    pub fn member_pref_intervals(
        &self,
        aprefs: &[Interval],
        pair_affs: &[Interval],
    ) -> Vec<Interval> {
        let members = self.affinity.members();
        let n = members.len();
        debug_assert_eq!(aprefs.len(), n);
        debug_assert_eq!(pair_affs.len(), self.affinity.num_pairs());
        let norm = if self.normalize_rpref && n > 1 {
            1.0 / (n - 1) as f64
        } else {
            1.0
        };
        (0..n)
            .map(|u| {
                let mut rpref = Interval::exact(0.0);
                for v in 0..n {
                    if v == u {
                        continue;
                    }
                    let pair = self
                        .affinity
                        .pair_of(members[u], members[v])
                        .expect("group members");
                    rpref = rpref + pair_affs[pair].mul_nonneg(aprefs[v]);
                }
                aprefs[u] + rpref.scale(norm)
            })
            .collect()
    }

    /// The consensus envelope from member preference envelopes.
    pub fn consensus_interval(&self, prefs: &[Interval]) -> Interval {
        let gpref = match self.consensus.preference {
            GroupPreferenceKind::Average => Interval::mean(prefs),
            GroupPreferenceKind::LeastMisery => Interval::min_of(prefs),
        };
        let dis = match self.consensus.disagreement {
            DisagreementKind::NoDisagreement => Interval::exact(0.0),
            DisagreementKind::AveragePairwise => {
                let n = prefs.len();
                if n < 2 {
                    Interval::exact(0.0)
                } else {
                    let mut acc = Interval::exact(0.0);
                    for i in 0..n {
                        for j in (i + 1)..n {
                            acc = acc + prefs[i].abs_diff(prefs[j]);
                        }
                    }
                    acc.scale(2.0 / (n as f64 * (n as f64 - 1.0)))
                }
            }
            DisagreementKind::Variance => {
                let n = prefs.len();
                if n == 0 {
                    Interval::exact(0.0)
                } else {
                    let mean = Interval::mean(prefs);
                    let mut acc = Interval::exact(0.0);
                    for p in prefs {
                        // (p − mean) envelope, then squared.
                        let d = Interval::new(p.lo - mean.hi, p.hi - mean.lo);
                        acc = acc + d.square();
                    }
                    acc.scale(1.0 / n as f64)
                }
            }
        };
        gpref.scale(self.consensus.w1) + dis.sub_from(1.0).scale(self.consensus.w2())
    }

    /// Full envelope: aprefs + pair affinities → `F` envelope.
    pub fn score_interval(&self, aprefs: &[Interval], pair_affs: &[Interval]) -> Interval {
        let prefs = self.member_pref_intervals(aprefs, pair_affs);
        self.consensus_interval(&prefs)
    }

    /// Fill `out` with the `n × n` pair-index table: `out[u·n + v]` is
    /// the group pair index of `(members[u], members[v])` (`usize::MAX`
    /// on the diagonal). Computed once per kernel run so the per-item
    /// hot loop never calls `GroupAffinity::pair_of`.
    pub fn fill_pair_index(&self, out: &mut Vec<usize>) {
        let members = self.affinity.members();
        let n = members.len();
        out.clear();
        out.resize(n * n, usize::MAX);
        for u in 0..n {
            for v in 0..n {
                if v != u {
                    out[u * n + v] = self
                        .affinity
                        .pair_of(members[u], members[v])
                        .expect("group members");
                }
            }
        }
    }

    /// Allocation-free [`BoundScorer::pair_affinity_interval`]: the
    /// component endpoints arrive pre-split into `comp_los` / `comp_his`
    /// (caller-owned scratch) instead of being collected per call. Same
    /// arithmetic, same operation order.
    #[inline]
    pub fn pair_affinity_interval_scratch(
        &self,
        static_iv: Interval,
        comp_los: &[f64],
        comp_his: &[f64],
    ) -> Interval {
        Interval::new(
            self.affinity
                .affinity_from_components(static_iv.lo, comp_los),
            self.affinity
                .affinity_from_components(static_iv.hi, comp_his),
        )
    }

    /// Whether the consensus envelope decomposes into **independent**
    /// lo/hi scalar chains: true for no-disagreement functions, where
    /// every operation's lo output reads only lo inputs (and likewise
    /// hi). Disagreement terms cross endpoints (`|a − b|`, variance,
    /// `1 − dis`), so they do not split. When this holds, the kernel
    /// maintains bounds incrementally via [`BoundScorer::score_end_split`]
    /// — recomputing just the hi chain for items whose lo inputs are
    /// unchanged.
    pub fn splits_endpoints(&self) -> bool {
        matches!(
            self.consensus.disagreement,
            DisagreementKind::NoDisagreement
        )
    }

    /// One endpoint of the consensus envelope, for consensus functions
    /// where [`BoundScorer::splits_endpoints`] holds.
    ///
    /// `member_end[v]` is the raw apref endpoint per member,
    /// `member_end_nonneg[v]` the same value clamped to `≥ 0`
    /// (`mul_nonneg`'s operand clamp, hoisted out of the `u` loop —
    /// `max` is deterministic, so precomputing it is value-identical),
    /// and `aff_end[u·n + v]` the dense pair-affinity endpoint matrix
    /// already clamped to `≥ 0` (the other `mul_nonneg` clamp) with an
    /// **exactly `0.0` diagonal**: the inner accumulation is a
    /// branchless dot product, sound because every term is `≥ +0.0`
    /// (clamped factors), so partial sums never go negative-zero and
    /// the diagonal's extra `+ 0.0·x` term is a bitwise no-op relative
    /// to the reference's `v ≠ u` fold.
    ///
    /// Apart from that no-op, the operation chain mirrors
    /// [`BoundScorer::score_interval`]'s per-endpoint arithmetic
    /// exactly — same fold order, same ops — so the result is
    /// bit-identical to the corresponding endpoint of the interval
    /// computation (pinned by this module's tests and the
    /// kernel-identity suite).
    pub fn score_end_split(
        &self,
        member_end: &[f64],
        member_end_nonneg: &[f64],
        aff_end: &[f64],
    ) -> f64 {
        debug_assert!(self.splits_endpoints());
        let n = member_end.len();
        debug_assert_eq!(aff_end.len(), n * n);
        debug_assert!((0..n).all(|u| aff_end[u * n + u] == 0.0), "zero diagonal");
        let norm = if self.normalize_rpref && n > 1 {
            1.0 / (n - 1) as f64
        } else {
            1.0
        };
        let mut sum = 0.0f64;
        let mut min = f64::INFINITY;
        for u in 0..n {
            let row = &aff_end[u * n..u * n + n];
            let mut rpref = 0.0f64;
            for (&a, &m) in row.iter().zip(member_end_nonneg) {
                rpref += a * m;
            }
            let pref = member_end[u] + rpref * norm;
            match self.consensus.preference {
                GroupPreferenceKind::Average => sum += pref,
                GroupPreferenceKind::LeastMisery => min = if u == 0 { pref } else { min.min(pref) },
            }
        }
        let gpref = match self.consensus.preference {
            GroupPreferenceKind::Average => sum / n as f64,
            GroupPreferenceKind::LeastMisery => min,
        };
        // `dis = [0, 0]` for no-disagreement functions, so the `1 − dis`
        // term is exactly `1.0` at both endpoints.
        gpref * self.consensus.w1 + (1.0 - 0.0) * self.consensus.w2()
    }

    /// Allocation-free [`BoundScorer::score_interval`]: member preference
    /// envelopes are written into the caller's `prefs_buf` and the pair
    /// lookup goes through a prebuilt [`BoundScorer::fill_pair_index`]
    /// table. Arithmetic and operation order are identical to the
    /// allocating path — the kernel's bit-identity contract depends on
    /// it.
    pub fn score_interval_scratch(
        &self,
        aprefs: &[Interval],
        pair_affs: &[Interval],
        pair_index: &[usize],
        prefs_buf: &mut Vec<Interval>,
    ) -> Interval {
        let n = aprefs.len();
        debug_assert_eq!(pair_index.len(), n * n);
        let norm = if self.normalize_rpref && n > 1 {
            1.0 / (n - 1) as f64
        } else {
            1.0
        };
        prefs_buf.clear();
        for u in 0..n {
            let mut rpref = Interval::exact(0.0);
            for v in 0..n {
                if v == u {
                    continue;
                }
                rpref = rpref + pair_affs[pair_index[u * n + v]].mul_nonneg(aprefs[v]);
            }
            prefs_buf.push(aprefs[u] + rpref.scale(norm));
        }
        self.consensus_interval(prefs_buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greca_affinity::AffinityMode;
    use greca_consensus::GroupScorer;
    use greca_dataset::UserId;

    fn view(mode: AffinityMode) -> GroupAffinity {
        GroupAffinity::new(
            vec![UserId(0), UserId(1), UserId(2)],
            mode,
            vec![1.0, 0.2, 0.3],
            vec![vec![0.8, 0.1, 0.2], vec![0.7, 0.1, 0.1]],
            vec![0.37, 0.3],
        )
    }

    fn all_consensus() -> Vec<ConsensusFunction> {
        vec![
            ConsensusFunction::average_preference(),
            ConsensusFunction::least_misery(),
            ConsensusFunction::pairwise_disagreement(0.8),
            ConsensusFunction::pairwise_disagreement(0.2),
            ConsensusFunction::variance_disagreement(0.5),
        ]
    }

    /// Exact inputs must reproduce the scalar scorer exactly.
    #[test]
    fn degenerate_intervals_match_scalar_scorer() {
        for mode in [
            AffinityMode::None,
            AffinityMode::StaticOnly,
            AffinityMode::Discrete,
            AffinityMode::continuous(),
        ] {
            let v = view(mode);
            for consensus in all_consensus() {
                for normalize in [true, false] {
                    let bound = BoundScorer::new(&v, consensus, normalize);
                    let scalar = GroupScorer::new(v.clone(), consensus, normalize);
                    let aprefs = [3.5, 1.0, 4.2];
                    let aprefs_iv: Vec<Interval> =
                        aprefs.iter().map(|&a| Interval::exact(a)).collect();
                    let pair_affs: Vec<Interval> = (0..v.num_pairs())
                        .map(|p| Interval::exact(v.affinity(p)))
                        .collect();
                    let iv = bound.score_interval(&aprefs_iv, &pair_affs);
                    let exact = scalar.score(&aprefs);
                    assert!(
                        iv.is_exact() && (iv.lo - exact).abs() < 1e-9,
                        "{mode:?}/{} exact {exact} vs [{}, {}]",
                        consensus.label(),
                        iv.lo,
                        iv.hi
                    );
                }
            }
        }
    }

    /// Widening any input envelope must keep the true score inside.
    #[test]
    fn envelopes_contain_true_scores() {
        let v = view(AffinityMode::Discrete);
        for consensus in all_consensus() {
            let bound = BoundScorer::new(&v, consensus, true);
            let scalar = GroupScorer::new(v.clone(), consensus, true);
            let truth = [3.5, 1.0, 4.2];
            let exact = scalar.score(&truth);
            // Envelope: apref_1 unknown in [0, 5]; pair (0,1) affinity
            // unknown in [floor, cap].
            let aprefs_iv = vec![
                Interval::exact(3.5),
                Interval::new(0.0, 5.0),
                Interval::exact(4.2),
            ];
            let pair_affs: Vec<Interval> = (0..v.num_pairs())
                .map(|p| {
                    if p == 0 {
                        Interval::new(v.affinity_floor(), v.affinity_cap())
                    } else {
                        Interval::exact(v.affinity(p))
                    }
                })
                .collect();
            // Truth uses the *actual* affinity, which lies inside the env.
            let iv = bound.score_interval(&aprefs_iv, &pair_affs);
            assert!(
                iv.contains(exact),
                "{}: {exact} ∉ [{}, {}]",
                consensus.label(),
                iv.lo,
                iv.hi
            );
        }
    }

    #[test]
    fn pair_affinity_interval_monotone_ends() {
        let v = view(AffinityMode::Discrete);
        let bs = BoundScorer::new(&v, ConsensusFunction::average_preference(), true);
        let iv = bs.pair_affinity_interval(
            Interval::new(0.2, 0.9),
            &[Interval::new(0.0, 1.0), Interval::new(0.1, 0.1)],
        );
        assert!(iv.lo <= iv.hi);
        // Exact components give exact affinity.
        let exact = bs.pair_affinity_interval(
            Interval::exact(0.5),
            &[Interval::exact(0.4), Interval::exact(0.1)],
        );
        assert!(exact.is_exact());
    }

    #[test]
    fn tightening_inputs_never_loosens_the_envelope() {
        let v = view(AffinityMode::Discrete);
        let bs = BoundScorer::new(&v, ConsensusFunction::pairwise_disagreement(0.5), true);
        let wide_aprefs = vec![Interval::new(0.0, 5.0); 3];
        let tight_aprefs = vec![
            Interval::new(1.0, 4.0),
            Interval::new(2.0, 3.0),
            Interval::new(0.5, 4.5),
        ];
        let affs: Vec<Interval> = (0..3).map(|p| Interval::exact(v.affinity(p))).collect();
        let wide = bs.score_interval(&wide_aprefs, &affs);
        let tight = bs.score_interval(&tight_aprefs, &affs);
        assert!(tight.lo >= wide.lo - 1e-12);
        assert!(tight.hi <= wide.hi + 1e-12);
    }

    /// The scratch (allocation-free) scorer must reproduce the
    /// allocating path bit-for-bit — the kernel's identity contract.
    #[test]
    fn scratch_scorer_is_bitwise_identical() {
        for mode in [
            AffinityMode::None,
            AffinityMode::StaticOnly,
            AffinityMode::Discrete,
            AffinityMode::continuous(),
        ] {
            let v = view(mode);
            for consensus in all_consensus() {
                for normalize in [true, false] {
                    let bs = BoundScorer::new(&v, consensus, normalize);
                    let mut pair_index = Vec::new();
                    bs.fill_pair_index(&mut pair_index);
                    let mut prefs_buf = Vec::new();
                    let aprefs = [
                        Interval::exact(3.5),
                        Interval::new(0.0, 5.0),
                        Interval::new(1.0, 4.2),
                    ];
                    let pair_affs: Vec<Interval> = (0..v.num_pairs())
                        .map(|p| Interval::new(0.0, v.affinity(p).max(0.1)))
                        .collect();
                    let want = bs.score_interval(&aprefs, &pair_affs);
                    let got =
                        bs.score_interval_scratch(&aprefs, &pair_affs, &pair_index, &mut prefs_buf);
                    assert!(
                        want.bit_eq(&got),
                        "{mode:?}/{}: [{}, {}] vs [{}, {}]",
                        consensus.label(),
                        want.lo,
                        want.hi,
                        got.lo,
                        got.hi
                    );
                    // The pair-affinity fold too.
                    let comps = [Interval::new(0.0, 1.0), Interval::new(0.1, 0.4)];
                    let los: Vec<f64> = comps.iter().map(|c| c.lo).collect();
                    let his: Vec<f64> = comps.iter().map(|c| c.hi).collect();
                    let w = bs.pair_affinity_interval(Interval::new(0.2, 0.9), &comps);
                    let g = bs.pair_affinity_interval_scratch(Interval::new(0.2, 0.9), &los, &his);
                    assert!(w.bit_eq(&g));
                }
            }
        }
    }

    /// The split lo/hi scalar chains must reproduce the interval
    /// computation's endpoints bit-for-bit for every no-disagreement
    /// consensus (the incremental-UB fast path of the kernel).
    #[test]
    fn split_endpoint_chains_match_interval_scorer() {
        for mode in [AffinityMode::None, AffinityMode::Discrete] {
            let v = view(mode);
            let n = 3;
            for consensus in [
                ConsensusFunction::average_preference(),
                ConsensusFunction::least_misery(),
            ] {
                for normalize in [true, false] {
                    let bs = BoundScorer::new(&v, consensus, normalize);
                    assert!(bs.splits_endpoints());
                    let mut pair_index = Vec::new();
                    bs.fill_pair_index(&mut pair_index);
                    let aprefs = [
                        Interval::exact(3.5),
                        Interval::new(0.0, 5.0),
                        Interval::new(1.0, 4.2),
                    ];
                    let pair_affs: Vec<Interval> = (0..v.num_pairs())
                        .map(|p| Interval::new(0.0, v.affinity(p).max(0.1)))
                        .collect();
                    let want = bs.score_interval(&aprefs, &pair_affs);
                    type Pick = fn(Interval) -> f64;
                    let picks: [(usize, Pick); 2] = [(0, |i| i.lo), (1, |i| i.hi)];
                    for (end, pick) in picks {
                        let member_end: Vec<f64> = aprefs.iter().map(|&i| pick(i)).collect();
                        let member_nonneg: Vec<f64> =
                            member_end.iter().map(|e| e.max(0.0)).collect();
                        let mut aff_end = vec![0.0; n * n];
                        for u in 0..n {
                            for w in 0..n {
                                if w != u {
                                    aff_end[u * n + w] =
                                        pick(pair_affs[pair_index[u * n + w]]).max(0.0);
                                }
                            }
                        }
                        let got = bs.score_end_split(&member_end, &member_nonneg, &aff_end);
                        let want_end = if end == 0 { want.lo } else { want.hi };
                        assert!(
                            got.to_bits() == want_end.to_bits(),
                            "{mode:?}/{} end {end}: {got} vs {want_end}",
                            consensus.label()
                        );
                    }
                }
            }
        }
        // Disagreement functions cross endpoints and must not split.
        let v = view(AffinityMode::Discrete);
        for c in [
            ConsensusFunction::pairwise_disagreement(0.5),
            ConsensusFunction::variance_disagreement(0.5),
        ] {
            assert!(!BoundScorer::new(&v, c, true).splits_endpoints());
        }
    }

    #[test]
    fn singleton_group_consensus() {
        let v = GroupAffinity::new(
            vec![UserId(7)],
            AffinityMode::Discrete,
            vec![],
            vec![],
            vec![],
        );
        let bs = BoundScorer::new(&v, ConsensusFunction::pairwise_disagreement(0.5), true);
        let iv = bs.score_interval(&[Interval::exact(4.0)], &[]);
        // dis = 0, gpref = 4 → F = 0.5·4 + 0.5·1 = 2.5.
        assert!(iv.is_exact() && (iv.lo - 2.5).abs() < 1e-12);
    }
}
