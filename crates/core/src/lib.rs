//! # greca-core
//!
//! GRECA — *Group Recommendation with Temporal Affinities* (EDBT 2015,
//! §3) — and its baselines.
//!
//! GRECA adapts the NRA member of the Fagin threshold-algorithm family to
//! group recommendation with temporal affinities. Its inputs are, for a
//! group of `n` users queried at period `p`:
//!
//! * `n` absolute-preference lists `PL_u` (from any CF model),
//! * static affinity lists `LaffS`,
//! * one set of periodic affinity lists `LaffV` per period `p' ⪯ p`,
//!
//! all sorted descending and read by **sequential accesses only**. GRECA
//! maintains `[LB, UB]` score envelopes per buffered item, a global
//! threshold for unseen items, and stops early via the paper's novel
//! **buffer condition** (Theorem 1). It is instance-optimal (Lemma 3) and
//! returns the correct top-k itemset (Lemma 2) under every consensus
//! function of `greca-consensus` and every affinity mode of
//! `greca-affinity`.
//!
//! Baselines: [`ta::ta_topk`] (random-access threshold algorithm,
//! reproducing §3.1's RA accounting) and [`naive::naive_topk`] (full
//! scan; also the correctness oracle).
//!
//! Serving layers on top of the algorithms: [`query::GrecaEngine`] (the
//! fluent query API over cold or warm [`substrate::Substrate`] storage)
//! and [`live::LiveEngine`] (rating ingestion with epoch-swapped
//! substrates — §2.4's evolving preferences without ever blocking or
//! perturbing in-flight queries; see the `live` module docs for a
//! runnable ingest example).
//!
//! ```
//! use greca_dataset::prelude::*;
//! use greca_cf::{CfConfig, UserCfModel};
//! use greca_affinity::{PopulationAffinity, SocialAffinitySource};
//! use greca_core::GrecaEngine;
//!
//! // Long-lived substrates: ratings + social signals over one year.
//! let ml = MovieLensConfig::small().generate();
//! let net = SocialConfig::tiny().generate();
//! let tl = Timeline::discretize(0, net.horizon(), Granularity::TwoMonth).unwrap();
//! let cf = UserCfModel::fit(&ml.matrix, CfConfig::default());
//! let universe: Vec<UserId> = net.users().collect();
//! let pop = PopulationAffinity::build(&SocialAffinitySource::new(&net), &universe, &tl);
//!
//! // A warm engine precomputes the shared Substrate once (per-user
//! // sorted preference columns + per-period sorted affinity arrays);
//! // queries serve zero-copy views with the paper's defaults baked in
//! // (k = 10, AP consensus, discrete affinity, decomposed lists) and
//! // the itemset defaulting to the group's candidate items.
//! let catalog: Vec<ItemId> = ml.matrix.items().collect();
//! let engine = GrecaEngine::warm(&cf, &pop, &catalog).unwrap();
//! let group = Group::new(vec![UserId(0), UserId(1), UserId(2)]).unwrap();
//! let result = engine.query(&group).top(5).run().unwrap();
//! assert_eq!(result.items.len(), 5);
//! assert!(result.stats.sa_percent() <= 100.0);
//! ```

#![warn(missing_docs)]

pub mod access;
pub mod fault;
pub mod greca;
pub mod interval;
pub mod lists;
pub mod live;
pub mod naive;
pub mod obs;
pub mod plan;
pub mod query;
pub mod score;
pub mod substrate;
pub mod ta;
pub mod wal;

pub use access::{AccessStats, Aggregate};
pub use fault::{FaultCtx, FaultPlan, InjectedFault, IoFault};
pub use greca::{
    greca_topk, greca_topk_with, CheckInterval, GrecaConfig, GrecaScratch, StopReason,
    StoppingRule, TopKItem, TopKResult,
};
pub use interval::Interval;
pub use lists::{
    GrecaInputs, ListKind, ListLayout, ListView, MaterializedInputs, NonFiniteEntry, SortedList,
};
pub use live::{
    EpochLineage, EpochProvider, IngestReport, LineageSummary, LiveEngine, LiveHealth, LiveModel,
    PinnedEpoch, PublishDelta, RecoveryReport, StagedBatch, LINEAGE_CAP,
};
pub use naive::{naive_scores, naive_topk};
pub use obs::{
    CacheNote, FlightRecorder, ObsTotals, Phase, SpanGuard, SpanKind, SpanRecord, TraceFilter,
    NUM_KINDS, NUM_PHASES,
};
pub use plan::{run_batch_with, PlanOptions, PlanStats, SharedMemberState};
pub use query::{
    run_batch, Algorithm, BatchResult, GrecaEngine, GroupQuery, PreparedQuery, QueryError,
    QueryFootprint, QueryKey, PAPER_DEFAULT_K,
};
pub use score::BoundScorer;
pub use substrate::{
    BuildOptions, ItemCoverage, LazyStats, MemoryFootprint, ScoreCompression, SegmentHandle,
    Substrate, QUANT_LEVELS,
};
pub use ta::{ta_topk, TaConfig};
pub use wal::{FsyncPolicy, RecoverySummary, Wal, WalOptions, WalRecord};
