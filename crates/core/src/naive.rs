//! Naive full-scan baseline.
//!
//! "The percentage of SAs represents the computational cost that GRECA
//! incurs, compared to a naive algorithm which entirely scans all lists"
//! (§4.2). This baseline reads every entry of every list (charging one SA
//! each), computes every item's exact consensus score, and sorts.
//!
//! It doubles as the correctness oracle: GRECA and TA must return an
//! itemset whose exact scores match the naive top-k's.

use crate::access::AccessStats;
use crate::greca::{StopReason, TopKItem, TopKResult};
use crate::lists::{GrecaInputs, ListKind};
use greca_affinity::GroupAffinity;
use greca_consensus::{ConsensusFunction, GroupScorer};
use greca_dataset::ItemId;
use std::collections::HashMap;

/// Exact scores for every item, computed by a full scan.
pub fn naive_scores(
    inputs: &GrecaInputs<'_>,
    affinity: &GroupAffinity,
    consensus: ConsensusFunction,
    normalize_rpref: bool,
) -> (Vec<(ItemId, f64)>, AccessStats) {
    let mut stats = AccessStats::new(inputs.total_entries());
    let n = inputs.num_members;
    let mut aprefs: HashMap<u32, Vec<f64>> = HashMap::with_capacity(inputs.num_items);
    // Scan everything (the affinity lists too — the naive algorithm reads
    // all inputs even though the scorer already knows the components).
    for list in inputs.all_lists() {
        for (id, score) in list.iter() {
            stats.record_sa();
            if let ListKind::Preference { member } = list.kind {
                aprefs.entry(id).or_insert_with(|| vec![0.0; n])[member as usize] = score;
            }
        }
    }
    let scorer = GroupScorer::new(affinity.clone(), consensus, normalize_rpref);
    let mut scored: Vec<(ItemId, f64)> = aprefs
        .into_iter()
        .map(|(id, a)| (ItemId(id), scorer.score(&a)))
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite scores")
            .then_with(|| a.0.cmp(&b.0))
    });
    (scored, stats)
}

/// Full-scan top-k with exact scores.
pub fn naive_topk(
    inputs: &GrecaInputs<'_>,
    affinity: &GroupAffinity,
    consensus: ConsensusFunction,
    normalize_rpref: bool,
    k: usize,
) -> TopKResult {
    assert!(k > 0, "k must be positive");
    let (scored, stats) = naive_scores(inputs, affinity, consensus, normalize_rpref);
    let items = scored
        .into_iter()
        .take(k)
        .map(|(item, s)| TopKItem { item, lb: s, ub: s })
        .collect();
    TopKResult {
        items,
        stats,
        sweeps: 0,
        stop_reason: StopReason::Exhausted,
    }
}
