//! The shared, immutable query substrate: precomputed sorted-list
//! storage behind `Arc`, sliced zero-copy into per-query views.
//!
//! §2.4's ad-hoc-group scenario assumes the CF model and the affinity
//! index are *long-lived* while groups arrive at query time — yet a cold
//! `prepare()` pays `O(n·m log m)` per query to re-derive and re-sort
//! every member's preference list. The TA lineage this paper builds on
//! gets its speed precisely from reading **pre-sorted, shared** inverted
//! lists; this module is that storage layer:
//!
//! * **Preference columns** — for every serving user, the
//!   score-descending preference list over the item universe, computed
//!   once from any [`PreferenceProvider`] and stored as one columnar
//!   `(ids, scores)` segment per user, each behind its own `Arc`. A
//!   query whose itemset *is* the universe borrows its segments as
//!   [`ListView`]s — zero copies, zero sorts, zero provider calls. A
//!   strict-subset itemset is filtered in one order-preserving pass
//!   (still no sort, no provider calls).
//! * **Affinity arrays** — per period (and for static affinity), every
//!   population pair ordered by component descending, plus the inverse
//!   *rank* array. Ordering any group's pairs by rank reproduces exactly
//!   the order a per-query sort would produce (normalization is a shared
//!   positive scale and both tie-break by ascending pair id), so warm
//!   periodic lists are assembled without comparing floats.
//!
//! Each substrate value is immutable and shared via `Arc<Substrate>`:
//! [`crate::query::run_batch`] worker threads, cached
//! [`PreparedQuery`](crate::query::PreparedQuery)s and the engine all
//! alias the same buffers. Because the engine borrows its
//! [`PopulationAffinity`] for its whole lifetime, the index cannot gain
//! periods behind the substrate's back — snapshot staleness is ruled out
//! by the borrow checker, not by invalidation logic.
//!
//! Evolving *ratings* are handled by versioning, not mutation: the
//! `Arc`-per-segment split makes [`Substrate::rebuild_dirty`] cheap — a
//! delta batch's invalidated users get fresh segments, every clean
//! segment (and the affinity arrays) is aliased — and the live layer
//! ([`crate::live::LiveEngine`]) publishes each rebuilt substrate as a
//! new *epoch* that in-flight queries, pinned to the previous epoch's
//! `Arc`s, never observe mid-read.

use crate::lists::{ListKind, ListView, NonFiniteEntry, SortedList};
use crate::query::QueryError;
use greca_affinity::PopulationAffinity;
use greca_cf::PreferenceProvider;
use greca_dataset::{Group, ItemId, UserId};
use std::sync::Arc;

/// Resident data bytes of one substrate, reported per storage layer —
/// see [`Substrate::memory_footprint`].
///
/// Counts element bytes (`len × size_of`) of every backing array;
/// allocator slack, `Arc` headers and the struct shells themselves are
/// excluded, so the figures are the *data* a capacity planner should
/// budget for, stable across allocators. Segments structurally shared
/// with another epoch are counted here in full (each substrate reports
/// what it keeps alive on its own).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// The universe layout: user and item id maps (users, dense user
    /// positions, items, dense item positions).
    pub universe_bytes: usize,
    /// Per-user preference segments (`(ids, scores)` columns).
    pub pref_bytes: usize,
    /// The population affinity arrays: static + per-period sorted pair
    /// columns, rank inverses, and the population position map.
    pub affinity_bytes: usize,
}

impl MemoryFootprint {
    /// Sum over all layers.
    pub fn total(&self) -> usize {
        self.universe_bytes + self.pref_bytes + self.affinity_bytes
    }

    /// The footprint as a JSON object (hand-formatted; serde is stubbed
    /// offline — see `vendor/README.md`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"universe_bytes\":{},\"pref_bytes\":{},\"affinity_bytes\":{},\"total_bytes\":{}}}",
            self.universe_bytes,
            self.pref_bytes,
            self.affinity_bytes,
            self.total()
        )
    }
}

/// How a query's itemset relates to the substrate's item universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemCoverage {
    /// The itemset is exactly the universe: preference views are
    /// zero-copy slices of the shared buffers.
    Full,
    /// A strict subset (mask indexed by the substrate's *dense* item
    /// position, not raw item id): preference lists are produced by one
    /// order-preserving filter pass per member.
    Subset(Vec<bool>),
}

/// Sentinel for "item id not in the universe" in the dense-index map.
const NOT_AN_ITEM: u32 = u32::MAX;

/// One user's precomputed preference columns: the score-descending
/// `(ids, scores)` list over the substrate's item universe.
///
/// Segments are the unit of structural sharing for
/// [`Substrate::rebuild_dirty`]: each lives behind its own `Arc`, so an
/// incremental rebuild re-sorts only invalidated users and *aliases*
/// every clean segment (a pointer copy, not a column copy).
#[derive(Debug)]
struct PrefSegment {
    /// Item ids, sorted by score descending (ties by item id).
    ids: Vec<u32>,
    /// Scores aligned with `ids`.
    scores: Vec<f64>,
}

/// The id-space layout of a substrate: which users own segments, what
/// the item universe is, and the dense maps over both. Immutable across
/// incremental rebuilds (the universe is fixed at engine construction),
/// hence shared behind one `Arc`.
#[derive(Debug)]
struct UniverseLayout {
    /// Users with precomputed preference segments (sorted by id).
    users: Vec<UserId>,
    /// `users` position by user id.
    user_pos: Vec<Option<u32>>,
    /// The item universe (sorted, deduplicated).
    items: Vec<ItemId>,
    /// Dense position in `items` by item id ([`NOT_AN_ITEM`] if absent),
    /// so per-query coverage masks are `O(m)`, not `O(max item id)`.
    item_dense: Vec<u32>,
    /// Entries per preference segment (= `items.len()`).
    m: usize,
}

/// The population-level sorted affinity arrays (static + per period).
/// Rating deltas never invalidate these — the paper derives affinity
/// from social signals, and the index itself is append-only — so
/// incremental rebuilds share them wholesale behind one `Arc`.
#[derive(Debug)]
struct AffinityArrays {
    /// Population universe position by user id (for population pair
    /// indexing; the substrate's users may be a subset of the universe).
    pop_pos: Vec<Option<u32>>,
    /// Population universe size.
    pop_n: usize,
    /// Population pairs ordered by globally-normalized static affinity
    /// descending, with the values.
    static_pairs: Vec<u32>,
    /// Values aligned with `static_pairs`.
    static_values: Vec<f64>,
    /// Per period: population pairs ordered by normalized periodic
    /// affinity descending.
    period_pairs: Vec<Vec<u32>>,
    /// Values aligned with `period_pairs`.
    period_values: Vec<Vec<f64>>,
    /// Per period: rank (position in `period_pairs[p]`) by pair id.
    period_rank: Vec<Vec<u32>>,
}

/// Precomputed sorted-list storage for one `(provider, population,
/// item universe)` triple. See the module docs.
///
/// Storage is split into `Arc`-shared pieces along invalidation
/// boundaries — per-user preference segments, the fixed universe
/// layout, and the rating-independent affinity arrays — so that
/// [`Substrate::rebuild_dirty`] can publish a new epoch's substrate by
/// recomputing only what a delta batch invalidated. Cloning a
/// `Substrate` is always cheap (pointer copies).
#[derive(Debug, Clone)]
pub struct Substrate {
    layout: Arc<UniverseLayout>,
    /// One preference segment per `layout.users` entry.
    segments: Vec<Arc<PrefSegment>>,
    affinity: Arc<AffinityArrays>,
}

impl Substrate {
    /// Precompute the substrate for every user of the population
    /// universe over `items`.
    ///
    /// Cost: one [`PreferenceProvider::preference_list`] call per
    /// universe user (the work a cold query pays per *member*, paid once
    /// per engine instead), plus one sort per affinity period. Rejects
    /// non-finite preference or affinity values with
    /// [`QueryError::NonFiniteScore`] — the same ingestion contract the
    /// cold path enforces per query.
    pub fn build(
        provider: &(dyn PreferenceProvider + Sync + '_),
        population: &PopulationAffinity,
        items: &[ItemId],
    ) -> Result<Self, QueryError> {
        Self::build_for(provider, population, items, population.universe())
    }

    /// Precompute preference segments only for `users` (must belong to
    /// the population universe) — the right call when only a known user
    /// cohort forms groups. Queries touching other users fall back to
    /// cold materialization.
    pub fn build_for(
        provider: &(dyn PreferenceProvider + Sync + '_),
        population: &PopulationAffinity,
        items: &[ItemId],
        users: &[UserId],
    ) -> Result<Self, QueryError> {
        let mut users: Vec<UserId> = users
            .iter()
            .copied()
            .filter(|&u| population.contains_user(u))
            .collect();
        users.sort_unstable();
        users.dedup();
        let mut items: Vec<ItemId> = items.to_vec();
        items.sort_unstable();
        items.dedup();
        let m = items.len();

        let max_user = users.last().map_or(0, |u| u.idx());
        let mut user_pos = vec![None; max_user + 1];
        for (pos, &u) in users.iter().enumerate() {
            user_pos[u.idx()] = Some(pos as u32);
        }
        let max_item = items.last().map_or(0, |i| i.0 as usize);
        let mut item_dense = vec![NOT_AN_ITEM; max_item + 1];
        for (dense, &i) in items.iter().enumerate() {
            item_dense[i.0 as usize] = dense as u32;
        }

        let mut segments = Vec::with_capacity(users.len());
        for &u in &users {
            let (ids, scores) = provider.preference_list(u, &items)?.into_sorted_columns();
            segments.push(Arc::new(PrefSegment { ids, scores }));
        }

        let universe = population.universe();
        let max_pop = universe.last().map_or(0, |u| u.idx());
        let mut pop_pos = vec![None; max_pop + 1];
        for (pos, &u) in universe.iter().enumerate() {
            pop_pos[u.idx()] = Some(pos as u32);
        }

        let (static_pairs, static_values) = population.static_sorted_desc();
        reject_non_finite(ListKind::StaticAffinity, &static_pairs, &static_values)?;
        let mut period_pairs = Vec::with_capacity(population.num_periods());
        let mut period_values = Vec::with_capacity(population.num_periods());
        let mut period_rank = Vec::with_capacity(population.num_periods());
        for p in 0..population.num_periods() {
            let (pairs, values) = population.period_sorted_desc(p);
            reject_non_finite(
                ListKind::PeriodicAffinity { period: p as u32 },
                &pairs,
                &values,
            )?;
            let mut rank = vec![0u32; pairs.len()];
            for (pos, &pair) in pairs.iter().enumerate() {
                rank[pair as usize] = pos as u32;
            }
            period_pairs.push(pairs);
            period_values.push(values);
            period_rank.push(rank);
        }

        Ok(Substrate {
            layout: Arc::new(UniverseLayout {
                users,
                user_pos,
                items,
                item_dense,
                m,
            }),
            segments,
            affinity: Arc::new(AffinityArrays {
                pop_pos,
                pop_n: universe.len(),
                static_pairs,
                static_values,
                period_pairs,
                period_values,
                period_rank,
            }),
        })
    }

    /// A new substrate with only `dirty_users`' preference segments
    /// recomputed from `provider`, structurally sharing everything else
    /// with `self`: clean segments alias the same `Arc`s (pointer
    /// copies), as do the universe layout and the affinity arrays.
    ///
    /// This is the incremental-epoch step of the live-ingestion path:
    /// cost is `O(|dirty ∩ users| · m log m)` provider calls and sorts
    /// plus `O(|users|)` pointer copies, versus the full
    /// [`Substrate::build`]'s `O(|universe| · m log m)`. Dirty users
    /// without a segment here (outside the precomputed cohort) are
    /// skipped — their queries fall back to cold materialization either
    /// way. The caller supplies the dirty set (see `greca-cf`'s
    /// `DeltaBatch::dirty_set`) and a provider already fitted on the
    /// *post-batch* ratings.
    ///
    /// The result is a distinct value: in-flight queries keep reading
    /// the old epoch's segments untouched (they hold their own `Arc`s),
    /// which is what makes the epoch swap safe without locks on the
    /// read path.
    pub fn rebuild_dirty(
        &self,
        provider: &(dyn PreferenceProvider + Sync + '_),
        dirty_users: &[UserId],
    ) -> Result<Self, QueryError> {
        let mut segments = self.segments.clone();
        for &u in dirty_users {
            if let Some(idx) = self.user_index(u) {
                let (ids, scores) = provider
                    .preference_list(u, &self.layout.items)?
                    .into_sorted_columns();
                segments[idx] = Arc::new(PrefSegment { ids, scores });
            }
        }
        Ok(Substrate {
            layout: Arc::clone(&self.layout),
            segments,
            affinity: Arc::clone(&self.affinity),
        })
    }

    /// Whether `u`'s preference segment is the *same allocation* in both
    /// substrates (structural sharing across an incremental rebuild).
    /// `false` when either side lacks a segment for `u`.
    pub fn shares_segment_with(&self, other: &Substrate, u: UserId) -> bool {
        match (self.user_index(u), other.user_index(u)) {
            (Some(a), Some(b)) => Arc::ptr_eq(&self.segments[a], &other.segments[b]),
            _ => false,
        }
    }

    /// Whether both substrates alias the same affinity arrays (they
    /// always do across [`Substrate::rebuild_dirty`]).
    pub fn shares_affinity_with(&self, other: &Substrate) -> bool {
        Arc::ptr_eq(&self.affinity, &other.affinity)
    }

    /// Users with precomputed preference segments.
    pub fn users(&self) -> &[UserId] {
        &self.layout.users
    }

    /// The item universe (sorted, deduplicated).
    pub fn items(&self) -> &[ItemId] {
        &self.layout.items
    }

    /// Number of items per preference segment.
    pub fn num_items(&self) -> usize {
        self.layout.m
    }

    /// Number of indexed periods.
    pub fn num_periods(&self) -> usize {
        self.affinity.period_pairs.len()
    }

    /// Approximate resident size of the preference buffers, in bytes
    /// (counts each shared segment once per substrate that references
    /// it).
    pub fn pref_bytes(&self) -> usize {
        self.segments
            .iter()
            .map(|s| {
                s.ids.len() * std::mem::size_of::<u32>()
                    + s.scores.len() * std::mem::size_of::<f64>()
            })
            .sum()
    }

    /// Resident data bytes per storage layer — the capacity-planning
    /// view of this substrate (see [`MemoryFootprint`] for the counting
    /// rules). Surfaced by `engine_baseline`'s JSON artifact and the
    /// serving layer's `stats` verb.
    pub fn memory_footprint(&self) -> MemoryFootprint {
        use std::mem::size_of;
        let layout = &self.layout;
        let universe_bytes = layout.users.len() * size_of::<UserId>()
            + layout.user_pos.len() * size_of::<Option<u32>>()
            + layout.items.len() * size_of::<ItemId>()
            + layout.item_dense.len() * size_of::<u32>();
        let aff = &self.affinity;
        let pair_cols = |pairs: &[u32], values: &[f64]| {
            std::mem::size_of_val(pairs) + std::mem::size_of_val(values)
        };
        let mut affinity_bytes = aff.pop_pos.len() * size_of::<Option<u32>>()
            + pair_cols(&aff.static_pairs, &aff.static_values);
        for p in 0..aff.period_pairs.len() {
            affinity_bytes += pair_cols(&aff.period_pairs[p], &aff.period_values[p])
                + aff.period_rank[p].len() * size_of::<u32>();
        }
        MemoryFootprint {
            universe_bytes,
            pref_bytes: self.pref_bytes(),
            affinity_bytes,
        }
    }

    /// Position of `u` among the substrate's users, if precomputed.
    pub fn user_index(&self, u: UserId) -> Option<usize> {
        self.layout
            .user_pos
            .get(u.idx())
            .copied()
            .flatten()
            .map(|p| p as usize)
    }

    /// Whether every member of `group` has a preference segment.
    pub fn covers_group(&self, group: &Group) -> bool {
        group
            .members()
            .iter()
            .all(|&u| self.user_index(u).is_some())
    }

    /// Population pair index of `(u, v)` (triangular over the population
    /// universe — the id space of the affinity arrays).
    pub fn population_pair_of(&self, u: UserId, v: UserId) -> Option<usize> {
        if u == v {
            return None;
        }
        let aff = &self.affinity;
        let pu = aff.pop_pos.get(u.idx()).copied().flatten()?;
        let pv = aff.pop_pos.get(v.idx()).copied().flatten()?;
        let (a, b) = (pu.min(pv) as usize, pu.max(pv) as usize);
        Some(a * aff.pop_n - a * (a + 1) / 2 + (b - a - 1))
    }

    /// Whether this substrate was built from (a cohort of) exactly this
    /// population index: same universe, same pair space, same period
    /// count. The invariant
    /// [`GrecaEngine::with_substrate`](crate::query::GrecaEngine::with_substrate)
    /// enforces — a substrate answering for a *different* index would
    /// silently rank by the wrong affinity arrays.
    pub fn is_compatible_with(&self, population: &PopulationAffinity) -> bool {
        let universe = population.universe();
        let aff = &self.affinity;
        aff.pop_n == universe.len()
            && aff.static_pairs.len() == population.num_pairs()
            && aff.period_pairs.len() == population.num_periods()
            && universe
                .iter()
                .enumerate()
                .all(|(pos, u)| aff.pop_pos.get(u.idx()).copied().flatten() == Some(pos as u32))
    }

    /// How `items` relates to the universe, or `None` when the substrate
    /// cannot serve it (an item outside the universe, or a duplicate —
    /// the cold path handles those verbatim). `O(m)` per call: the mask
    /// is over dense item positions, not raw item ids.
    pub fn item_coverage(&self, items: &[ItemId]) -> Option<ItemCoverage> {
        let mut mask = vec![false; self.layout.m];
        for &i in items {
            let dense = self.dense_of(i)?;
            if mask[dense] {
                return None;
            }
            mask[dense] = true;
        }
        if items.len() == self.layout.m {
            Some(ItemCoverage::Full)
        } else {
            Some(ItemCoverage::Subset(mask))
        }
    }

    /// Dense position of an item in the universe.
    #[inline]
    fn dense_of(&self, i: ItemId) -> Option<usize> {
        match self.layout.item_dense.get(i.0 as usize).copied() {
            Some(d) if d != NOT_AN_ITEM => Some(d as usize),
            _ => None,
        }
    }

    /// The zero-copy preference view of the user at `user_idx`, labeled
    /// as group member `member`.
    pub fn pref_view(&self, user_idx: usize, member: u32) -> ListView<'_> {
        let seg = &self.segments[user_idx];
        ListView::new(ListKind::Preference { member }, &seg.ids, &seg.scores)
    }

    /// The user's preference segment filtered to a subset itemset
    /// (`mask` by dense item position, `len` items), preserving the
    /// sorted order — one linear pass, no sort, no provider calls.
    pub fn filtered_pref_list(
        &self,
        user_idx: usize,
        member: u32,
        mask: &[bool],
        len: usize,
    ) -> SortedList {
        let seg = &self.segments[user_idx];
        let mut ids = Vec::with_capacity(len);
        let mut scores = Vec::with_capacity(len);
        for (pos, &id) in seg.ids.iter().enumerate() {
            // Segment ids always belong to the universe; the dense
            // lookup cannot miss.
            let dense = self.layout.item_dense[id as usize] as usize;
            if mask[dense] {
                ids.push(id);
                scores.push(seg.scores[pos]);
            }
        }
        SortedList::from_sorted_columns(ListKind::Preference { member }, ids, scores)
    }

    /// Population-wide static affinity as one descending view. Entry ids
    /// are **population** pair indices (unlike per-query lists, whose ids
    /// are group pair indices).
    pub fn static_view(&self) -> ListView<'_> {
        ListView::new(
            ListKind::StaticAffinity,
            &self.affinity.static_pairs,
            &self.affinity.static_values,
        )
    }

    /// Population-wide periodic affinity of one period as a descending
    /// view (entry ids are population pair indices).
    pub fn period_view(&self, p_idx: usize) -> ListView<'_> {
        ListView::new(
            ListKind::PeriodicAffinity {
                period: p_idx as u32,
            },
            &self.affinity.period_pairs[p_idx],
            &self.affinity.period_values[p_idx],
        )
    }

    /// Order `(group pair id, population pair id)` tuples by the given
    /// period's precomputed rank.
    ///
    /// Both the population order and a per-group sort order lists by
    /// (component descending, pair id ascending), and restricting the
    /// population's triangular id order to a group preserves the group's
    /// triangular order — so the result is *identical* to sorting the
    /// group's component values, without touching a float.
    pub fn order_pairs_by_period_rank(&self, p_idx: usize, pairs: &mut [(u32, usize)]) {
        let rank = &self.affinity.period_rank[p_idx];
        pairs.sort_by_key(|&(_, pop_pair)| rank[pop_pair]);
    }
}

/// Reject a non-finite value in a population-level sorted array — the
/// ingestion-time counterpart of the cold path's per-query
/// `SortedList::new` validation. Without it a warm engine would compute
/// silently wrong bounds from a NaN the cold path turns into a typed
/// error (debug builds catch this earlier via the affinity sources'
/// `debug_assert`s; this is the release-build guarantee).
fn reject_non_finite(kind: ListKind, pairs: &[u32], values: &[f64]) -> Result<(), QueryError> {
    for (&id, &value) in pairs.iter().zip(values) {
        if !value.is_finite() {
            return Err(QueryError::from(NonFiniteEntry { kind, id, value }));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use greca_affinity::TableAffinitySource;
    use greca_cf::RawRatings;
    use greca_dataset::{Granularity, RatingMatrixBuilder, Timeline};

    fn world() -> (greca_dataset::RatingMatrix, PopulationAffinity, Timeline) {
        let mut b = RatingMatrixBuilder::new(3, 4);
        b.rate(UserId(0), ItemId(0), 5.0, 0)
            .rate(UserId(0), ItemId(2), 3.0, 0)
            .rate(UserId(1), ItemId(1), 4.0, 0)
            .rate(UserId(2), ItemId(3), 2.0, 0)
            .rate(UserId(2), ItemId(0), 1.0, 0);
        let matrix = b.build();
        let mut src = TableAffinitySource::new();
        src.set_static(UserId(0), UserId(1), 1.0)
            .set_static(UserId(0), UserId(2), 0.2)
            .set_static(UserId(1), UserId(2), 0.7);
        let tl = Timeline::discretize(0, 100, Granularity::Custom(50)).unwrap();
        let (p1, p2) = (tl.periods()[0], tl.periods()[1]);
        src.set_periodic(UserId(0), UserId(1), p1.start, 0.8)
            .set_periodic(UserId(1), UserId(2), p1.start, 0.9)
            .set_periodic(UserId(0), UserId(1), p2.start, 0.7);
        let users = vec![UserId(0), UserId(1), UserId(2)];
        let pop = PopulationAffinity::build(&src, &users, &tl);
        (matrix, pop, tl)
    }

    #[test]
    fn segments_are_sorted_and_zero_copy() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let sub = Substrate::build(&raw, &pop, &items).unwrap();
        assert_eq!(sub.users(), &[UserId(0), UserId(1), UserId(2)]);
        assert_eq!(sub.num_items(), 4);
        for u in 0..3 {
            let v = sub.pref_view(u, u as u32);
            assert_eq!(v.len(), 4);
            for w in v.scores.windows(2) {
                assert!(w[0] >= w[1]);
            }
        }
        // User 0: rated items 0 (5.0) and 2 (3.0); 1, 3 unrated → 0.0,
        // tie-broken by id.
        let v0 = sub.pref_view(0, 0);
        assert_eq!(v0.ids, &[0, 2, 1, 3]);
        assert_eq!(v0.scores, &[5.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn item_coverage_classification() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let sub = Substrate::build(&raw, &pop, &items).unwrap();
        assert_eq!(sub.item_coverage(&items), Some(ItemCoverage::Full));
        // Order does not matter for coverage.
        let shuffled = vec![ItemId(3), ItemId(0), ItemId(2), ItemId(1)];
        assert_eq!(sub.item_coverage(&shuffled), Some(ItemCoverage::Full));
        match sub.item_coverage(&[ItemId(1), ItemId(3)]) {
            Some(ItemCoverage::Subset(mask)) => {
                // Mask is over dense positions; this world's items are
                // 0..4, so dense position == item id.
                assert!(mask[1] && mask[3] && !mask[0] && !mask[2]);
            }
            other => panic!("expected subset, got {other:?}"),
        }
        // Foreign item and duplicates disqualify the substrate.
        assert_eq!(sub.item_coverage(&[ItemId(9)]), None);
        assert_eq!(sub.item_coverage(&[ItemId(1), ItemId(1)]), None);
    }

    #[test]
    fn filtered_segment_preserves_order() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let sub = Substrate::build(&raw, &pop, &items).unwrap();
        let mut mask = vec![false; 4];
        mask[0] = true;
        mask[3] = true;
        let l = sub.filtered_pref_list(0, 0, &mask, 2);
        let v = l.as_view();
        assert_eq!(v.ids, &[0, 3]);
        assert_eq!(v.scores, &[5.0, 0.0]);
    }

    #[test]
    fn population_views_are_descending_and_ranked() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let sub = Substrate::build(&raw, &pop, &items).unwrap();
        let sv = sub.static_view();
        assert_eq!(sv.len(), 3);
        for w in sv.scores.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(sub.num_periods(), 2);
        for p in 0..2 {
            let pv = sub.period_view(p);
            for w in pv.scores.windows(2) {
                assert!(w[0] >= w[1]);
            }
        }
        // Rank ordering of all three pairs reproduces the period view's
        // pair order.
        let mut pairs: Vec<(u32, usize)> = (0..3).map(|p| (p as u32, p)).collect();
        sub.order_pairs_by_period_rank(0, &mut pairs);
        let got: Vec<u32> = pairs.iter().map(|&(_, pop_pair)| pop_pair as u32).collect();
        assert_eq!(got, sub.period_view(0).ids);
    }

    #[test]
    fn memory_footprint_accounts_every_layer() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let sub = Substrate::build(&raw, &pop, &items).unwrap();
        let fp = sub.memory_footprint();
        assert_eq!(fp.pref_bytes, sub.pref_bytes());
        // 3 users × 4 items × (u32 id + f64 score).
        assert_eq!(fp.pref_bytes, 3 * 4 * 12);
        assert!(fp.universe_bytes > 0, "layout maps counted");
        assert!(fp.affinity_bytes > 0, "affinity arrays counted");
        assert_eq!(
            fp.total(),
            fp.universe_bytes + fp.pref_bytes + fp.affinity_bytes
        );
        let json = fp.to_json();
        assert!(json.contains("\"total_bytes\"") && json.contains("\"pref_bytes\""));
    }

    #[test]
    fn compatibility_rejects_foreign_population() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let sub = Substrate::build(&raw, &pop, &items).unwrap();
        assert!(sub.is_compatible_with(&pop));
        // A static-only index over the same users: different period
        // count → incompatible.
        let mut src = TableAffinitySource::new();
        src.set_static(UserId(0), UserId(1), 0.5);
        let other = PopulationAffinity::new_static_only(&src, &[UserId(0), UserId(1), UserId(2)]);
        assert!(!sub.is_compatible_with(&other));
        // A different universe → incompatible.
        let wider = PopulationAffinity::new_static_only(
            &src,
            &[UserId(0), UserId(1), UserId(2), UserId(7)],
        );
        assert!(!sub.is_compatible_with(&wider));
    }

    #[test]
    fn rebuild_dirty_shares_clean_segments() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let sub = Substrate::build(&raw, &pop, &items).unwrap();

        // User 1 rates item 3: only their segment is invalidated.
        let mut b = RatingMatrixBuilder::new(3, 4);
        b.rate(UserId(0), ItemId(0), 5.0, 0)
            .rate(UserId(0), ItemId(2), 3.0, 0)
            .rate(UserId(1), ItemId(1), 4.0, 0)
            .rate(UserId(1), ItemId(3), 5.0, 1)
            .rate(UserId(2), ItemId(3), 2.0, 0)
            .rate(UserId(2), ItemId(0), 1.0, 0);
        let next_matrix = b.build();
        let next_raw = RawRatings(&next_matrix);
        let next = sub.rebuild_dirty(&next_raw, &[UserId(1)]).unwrap();

        // Dirty user: fresh segment with the new ordering.
        assert!(!sub.shares_segment_with(&next, UserId(1)));
        let v1 = next.pref_view(1, 1);
        assert_eq!(v1.ids, &[3, 1, 0, 2]);
        assert_eq!(v1.scores, &[5.0, 4.0, 0.0, 0.0]);
        // Clean users: the same allocations, not copies.
        assert!(sub.shares_segment_with(&next, UserId(0)));
        assert!(sub.shares_segment_with(&next, UserId(2)));
        assert!(sub.shares_affinity_with(&next));
        // The old epoch still serves its original view.
        assert_eq!(sub.pref_view(1, 1).ids, &[1, 0, 2, 3]);
        // The rebuilt substrate equals a cold build from the new matrix.
        let cold = Substrate::build(&next_raw, &pop, &items).unwrap();
        for u in 0..3 {
            assert_eq!(next.pref_view(u, 0).ids, cold.pref_view(u, 0).ids);
            assert_eq!(next.pref_view(u, 0).scores, cold.pref_view(u, 0).scores);
        }
    }

    #[test]
    fn rebuild_dirty_skips_uncovered_users() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let sub = Substrate::build_for(&raw, &pop, &items, &[UserId(0), UserId(2)]).unwrap();
        let next = sub.rebuild_dirty(&raw, &[UserId(1), UserId(9)]).unwrap();
        assert!(sub.shares_segment_with(&next, UserId(0)));
        assert!(sub.shares_segment_with(&next, UserId(2)));
        assert!(!sub.shares_segment_with(&next, UserId(1)), "no segment");
    }

    #[test]
    fn build_for_restricts_users() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let sub = Substrate::build_for(&raw, &pop, &items, &[UserId(2), UserId(0)]).unwrap();
        assert_eq!(sub.users(), &[UserId(0), UserId(2)]);
        assert_eq!(sub.user_index(UserId(2)), Some(1));
        assert_eq!(sub.user_index(UserId(1)), None);
        let g = Group::new(vec![UserId(0), UserId(2)]).unwrap();
        assert!(sub.covers_group(&g));
        let g2 = Group::new(vec![UserId(0), UserId(1)]).unwrap();
        assert!(!sub.covers_group(&g2));
        // Population pair indexing still spans the full universe.
        assert_eq!(sub.population_pair_of(UserId(0), UserId(2)), Some(1));
    }
}
