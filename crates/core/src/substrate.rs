//! The shared, immutable query substrate: precomputed sorted-list
//! storage behind `Arc`, sliced zero-copy into per-query views.
//!
//! §2.4's ad-hoc-group scenario assumes the CF model and the affinity
//! index are *long-lived* while groups arrive at query time — yet a cold
//! `prepare()` pays `O(n·m log m)` per query to re-derive and re-sort
//! every member's preference list. The TA lineage this paper builds on
//! gets its speed precisely from reading **pre-sorted, shared** inverted
//! lists; this module is that storage layer:
//!
//! * **Preference columns** — for every serving user, the
//!   score-descending preference list over the item universe, computed
//!   once from any [`PreferenceProvider`] and stored as one columnar
//!   `(ids, scores)` segment per user, each behind its own `Arc`. A
//!   query whose itemset *is* the universe borrows its segments as
//!   [`ListView`]s — zero copies, zero sorts, zero provider calls. A
//!   strict-subset itemset is filtered in one order-preserving pass
//!   (still no sort, no provider calls).
//! * **Affinity arrays** — per period (and for static affinity), every
//!   population pair ordered by component descending, plus the inverse
//!   *rank* array. Ordering any group's pairs by rank reproduces exactly
//!   the order a per-query sort would produce (normalization is a shared
//!   positive scale and both tie-break by ascending pair id), so warm
//!   periodic lists are assembled without comparing floats.
//!
//! # Scale-tier storage
//!
//! Three mechanisms (all selected via [`BuildOptions`]) let one substrate
//! span user populations far beyond the paper's 77-user study world:
//!
//! * **Sharded construction** — eager segments are built by
//!   `std::thread`s over contiguous user shards and merged in user order,
//!   so the result is bit-identical to a sequential build regardless of
//!   thread count. Each shard reuses one scratch buffer and exploits the
//!   provider contract (`apref ≥ 0`): only positive-score entries are
//!   sorted, the zero tail is emitted in id order without comparisons —
//!   the order a full sort would produce anyway.
//! * **Quantized scores** ([`ScoreCompression::Quantized`]) — a segment
//!   stores `u16` codes plus a per-list dequantization table instead of
//!   one `f64` per item. Lists with ≤ 65 536 distinct score values (every
//!   list whose itemset is ≤ 65 536 items, so all study-scale worlds) use
//!   an exact dictionary of the original `f64` bit patterns: dequantized
//!   views are **bit-identical** to the uncompressed path. Longer lists
//!   with more distinct values fall back to a linear `hi − code·step`
//!   table whose absolute error is bounded by `step / 2` (see
//!   [`Substrate::quant_error_bound`]).
//! * **Lazy residency** — users listed as *lazy* in
//!   [`Substrate::build_with`] get no segment at build time; their
//!   columns are derived from the provider on first access and cached in
//!   a budget-governed store (see [`Substrate::memory_footprint`] for
//!   the accounting and eviction rules). A 1M-user universe is therefore
//!   addressable without materializing 1M preference lists up front.
//!
//! All three compose: queries go through [`Substrate::segment_handle`],
//! which yields a [`SegmentHandle`] owning whatever `Arc`s the view
//! needs, so eviction can never invalidate an in-flight query.
//!
//! Each substrate value is immutable and shared via `Arc<Substrate>`:
//! [`crate::query::run_batch`] worker threads, cached
//! [`PreparedQuery`](crate::query::PreparedQuery)s and the engine all
//! alias the same buffers. Because the engine borrows its
//! [`PopulationAffinity`] for its whole lifetime, the index cannot gain
//! periods behind the substrate's back — snapshot staleness is ruled out
//! by the borrow checker, not by invalidation logic.
//!
//! Evolving *ratings* are handled by versioning, not mutation: the
//! `Arc`-per-segment split makes [`Substrate::rebuild_dirty`] cheap — a
//! delta batch's invalidated users get fresh segments, every clean
//! segment (and the affinity arrays) is aliased — and the live layer
//! ([`crate::live::LiveEngine`]) publishes each rebuilt substrate as a
//! new *epoch* that in-flight queries, pinned to the previous epoch's
//! `Arc`s, never observe mid-read.

use crate::lists::{ListKind, ListView, NonFiniteEntry, SortedList};
use crate::query::QueryError;
use greca_affinity::PopulationAffinity;
use greca_cf::{NonFiniteScore, PreferenceProvider};
use greca_dataset::{Group, ItemId, UserId};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of representable quantization levels (`u16` codes).
pub const QUANT_LEVELS: usize = 1 << 16;

/// How preference scores are stored inside resident segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoreCompression {
    /// One `f64` per item (12 bytes/item with the `u32` id column) —
    /// views borrow the stored scores directly.
    #[default]
    F64,
    /// `u16` codes plus a per-list dequantization table (6 bytes/item
    /// with the id column, amortizing the table). Views are served from
    /// a cached dequantized buffer; exact (bit-identical) whenever a
    /// list has ≤ [`QUANT_LEVELS`] distinct values, bounded-error
    /// otherwise.
    Quantized,
}

impl ScoreCompression {
    /// Wire/JSON label (`stats` verb, bench artifacts).
    pub fn label(&self) -> &'static str {
        match self {
            ScoreCompression::F64 => "f64",
            ScoreCompression::Quantized => "quantized",
        }
    }
}

/// Construction options for [`Substrate::build_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Worker threads for eager segment construction; `0` means
    /// `std::thread::available_parallelism()`. The result is
    /// bit-identical for every thread count.
    pub threads: usize,
    /// Resident score representation.
    pub compression: ScoreCompression,
    /// Byte budget for the materialization cache (lazily built segments
    /// plus dequantized score buffers). `None` = unbounded.
    pub materialize_budget: Option<usize>,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            threads: 0,
            compression: ScoreCompression::F64,
            materialize_budget: None,
        }
    }
}

impl BuildOptions {
    /// The thread count `threads == 0` resolves to on this host.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// The worker count a build over `users` eager users actually runs
    /// with: [`BuildOptions::resolved_threads`] clamped to the user
    /// count (every shard needs at least one user). This is the figure
    /// benchmarks should report next to a sharded-build timing —
    /// `resolved_threads()` alone over-reports on small worlds.
    pub fn workers_for(&self, users: usize) -> usize {
        self.resolved_threads().clamp(1, users.max(1))
    }
}

/// Resident data bytes of one substrate, reported per storage layer —
/// see [`Substrate::memory_footprint`].
///
/// Counts element bytes (`len × size_of`) of every backing array;
/// allocator slack, `Arc` headers and the struct shells themselves are
/// excluded, so the figures are the *data* a capacity planner should
/// budget for, stable across allocators. Segments structurally shared
/// with another epoch are counted here in full (each substrate reports
/// what it keeps alive on its own).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// The universe layout: user and item id maps (users, dense user
    /// positions, items, dense item positions).
    pub universe_bytes: usize,
    /// Per-user **resident** preference segments. For
    /// [`ScoreCompression::F64`] this is `ids (u32) + scores (f64)`;
    /// for [`ScoreCompression::Quantized`] it is `ids (u32) + codes
    /// (u16) + dequant table` — the compact form, not the transient
    /// dequantized buffers (those live in `lazy_bytes`). Lazy slots
    /// contribute nothing here.
    pub pref_bytes: usize,
    /// The population affinity arrays: static + per-period sorted pair
    /// columns, rank inverses, and the population position map.
    pub affinity_bytes: usize,
    /// The materialization cache: segments built on demand for lazy
    /// users plus dequantized score buffers for quantized segments.
    /// Bounded by [`BuildOptions::materialize_budget`]; evicted FIFO
    /// once the budget is exceeded (in-flight queries keep their own
    /// `Arc`s, so eviction only drops the *cache's* reference).
    pub lazy_bytes: usize,
}

impl MemoryFootprint {
    /// Sum over all layers.
    pub fn total(&self) -> usize {
        self.universe_bytes + self.pref_bytes + self.affinity_bytes + self.lazy_bytes
    }

    /// The footprint as a JSON object (hand-formatted; serde is stubbed
    /// offline — see `vendor/README.md`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"universe_bytes\":{},\"pref_bytes\":{},\"affinity_bytes\":{},\"lazy_bytes\":{},\"total_bytes\":{}}}",
            self.universe_bytes,
            self.pref_bytes,
            self.affinity_bytes,
            self.lazy_bytes,
            self.total()
        )
    }
}

/// Counters of the on-demand materialization cache (see
/// [`Substrate::lazy_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LazyStats {
    /// Bytes currently held by the cache.
    pub resident_bytes: usize,
    /// The configured budget (`usize::MAX` when unbounded).
    pub budget_bytes: usize,
    /// Entries currently cached.
    pub cached_segments: usize,
    /// Total materializations performed (a re-build after eviction
    /// counts again).
    pub materializations: u64,
    /// Entries dropped to stay under budget.
    pub evictions: u64,
}

/// How a query's itemset relates to the substrate's item universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemCoverage {
    /// The itemset is exactly the universe: preference views are
    /// zero-copy slices of the shared buffers.
    Full,
    /// A strict subset (mask indexed by the substrate's *dense* item
    /// position, not raw item id): preference lists are produced by one
    /// order-preserving filter pass per member.
    Subset(Vec<bool>),
}

/// Sentinel for "item id not in the universe" in the dense-index map.
const NOT_AN_ITEM: u32 = u32::MAX;

/// Per-list dequantization table of a quantized segment.
#[derive(Debug)]
enum Dequant {
    /// Exact: the distinct score values (by bit pattern, in list
    /// order), indexed by code. Dequantization reproduces the original
    /// `f64` bits.
    Dict(Vec<f64>),
    /// Lossy linear levels: `value(code) = hi − code · step`. Used only
    /// when a list carries more than [`QUANT_LEVELS`] distinct values;
    /// absolute error ≤ `step / 2`.
    Linear { hi: f64, step: f64 },
}

impl Dequant {
    #[inline]
    fn value(&self, code: u16) -> f64 {
        match self {
            Dequant::Dict(dict) => dict[code as usize],
            Dequant::Linear { hi, step } => hi - code as f64 * step,
        }
    }

    fn error_bound(&self) -> f64 {
        match self {
            Dequant::Dict(_) => 0.0,
            Dequant::Linear { step, .. } => step * 0.5,
        }
    }

    fn data_bytes(&self) -> usize {
        match self {
            Dequant::Dict(d) => std::mem::size_of_val(d.as_slice()),
            Dequant::Linear { .. } => 2 * std::mem::size_of::<f64>(),
        }
    }
}

/// Score column of one segment: dense floats or quantized codes.
#[derive(Debug)]
enum ScoreStore {
    Dense(Vec<f64>),
    Quantized { codes: Vec<u16>, dequant: Dequant },
}

impl ScoreStore {
    /// Compress a score-descending column according to `compression`.
    fn from_scores(scores: Vec<f64>, compression: ScoreCompression) -> Self {
        match compression {
            ScoreCompression::F64 => ScoreStore::Dense(scores),
            ScoreCompression::Quantized => quantize(&scores),
        }
    }

    fn data_bytes(&self) -> usize {
        match self {
            ScoreStore::Dense(s) => std::mem::size_of_val(s.as_slice()),
            ScoreStore::Quantized { codes, dequant } => {
                std::mem::size_of_val(codes.as_slice()) + dequant.data_bytes()
            }
        }
    }

    fn error_bound(&self) -> f64 {
        match self {
            ScoreStore::Dense(_) => 0.0,
            ScoreStore::Quantized { dequant, .. } => dequant.error_bound(),
        }
    }
}

/// Quantize a score-descending column into `u16` codes + a dequant
/// table. Distinct values are runs of equal *bit patterns* (`±0.0` are
/// distinct runs, so exact dequantization preserves the sign of zero).
fn quantize(scores: &[f64]) -> ScoreStore {
    let mut dict: Vec<f64> = Vec::new();
    for &s in scores {
        if dict.last().is_none_or(|l| l.to_bits() != s.to_bits()) {
            dict.push(s);
        }
    }
    if dict.len() <= QUANT_LEVELS {
        let mut codes = Vec::with_capacity(scores.len());
        let mut k = 0usize;
        for &s in scores {
            if dict[k].to_bits() != s.to_bits() {
                k += 1;
            }
            codes.push(k as u16);
        }
        dict.shrink_to_fit();
        ScoreStore::Quantized {
            codes,
            dequant: Dequant::Dict(dict),
        }
    } else {
        // More distinct values than codes: linear levels over the
        // list's range. `hi > lo` strictly (otherwise there would be a
        // single distinct value), so `step` is finite and positive.
        let hi = scores[0];
        let lo = *scores.last().expect("non-empty");
        let step = (hi - lo) / (QUANT_LEVELS - 1) as f64;
        let codes = scores
            .iter()
            .map(|&s| (((hi - s) / step).round() as i64).clamp(0, QUANT_LEVELS as i64 - 1) as u16)
            .collect();
        ScoreStore::Quantized {
            codes,
            dequant: Dequant::Linear { hi, step },
        }
    }
}

/// One user's precomputed preference columns: the score-descending
/// `(ids, scores)` list over the substrate's item universe.
///
/// Segments are the unit of structural sharing for
/// [`Substrate::rebuild_dirty`]: each lives behind its own `Arc`, so an
/// incremental rebuild re-sorts only invalidated users and *aliases*
/// every clean segment (a pointer copy, not a column copy).
#[derive(Debug)]
struct PrefSegment {
    /// Item ids, sorted by score descending (ties by item id).
    ids: Vec<u32>,
    /// Scores aligned with `ids` (dense or quantized).
    store: ScoreStore,
}

impl PrefSegment {
    fn data_bytes(&self) -> usize {
        std::mem::size_of_val(self.ids.as_slice()) + self.store.data_bytes()
    }
}

/// One slot of the substrate's per-user segment table.
#[derive(Debug, Clone)]
enum SegmentSlot {
    /// Built at construction (or by [`Substrate::rebuild_dirty`]).
    Resident(Arc<PrefSegment>),
    /// Derived from the provider on first access, cached under the
    /// materialization budget.
    Lazy,
}

/// An owned, eviction-safe reference to one user's preference columns.
///
/// Obtained from [`Substrate::segment_handle`]; holds the segment `Arc`
/// (and, for quantized segments, the dequantized score buffer), so the
/// slices returned by [`SegmentHandle::view`] stay valid for the
/// handle's lifetime even if the cache evicts the entry meanwhile.
#[derive(Debug, Clone)]
pub struct SegmentHandle {
    seg: Arc<PrefSegment>,
    /// `Some` iff the segment is quantized: the dense `f64` buffer the
    /// views borrow from.
    dequant: Option<Arc<Vec<f64>>>,
}

impl SegmentHandle {
    /// Item ids, score-descending (ties by id).
    pub fn ids(&self) -> &[u32] {
        &self.seg.ids
    }

    /// Scores aligned with [`SegmentHandle::ids`].
    pub fn scores(&self) -> &[f64] {
        match &self.dequant {
            Some(d) => d,
            None => match &self.seg.store {
                ScoreStore::Dense(s) => s,
                ScoreStore::Quantized { .. } => {
                    unreachable!("quantized handles always carry a dequant buffer")
                }
            },
        }
    }

    /// The columns as a preference [`ListView`] labeled as group member
    /// `member`.
    pub fn view(&self, member: u32) -> ListView<'_> {
        ListView::new(ListKind::Preference { member }, self.ids(), self.scores())
    }
}

/// The materialization cache: lazily built segments and dequantized
/// score buffers, FIFO-evicted beyond the byte budget. Shared by all
/// clones of one substrate value; [`Substrate::rebuild_dirty`] starts a
/// fresh (empty) cache so no stale entry can cross an epoch boundary.
#[derive(Debug)]
struct LazyStore {
    budget_bytes: usize,
    inner: Mutex<LazyInner>,
}

#[derive(Debug, Default)]
struct LazyInner {
    entries: HashMap<usize, CacheEntry>,
    /// Insertion order (FIFO eviction).
    order: VecDeque<usize>,
    resident_bytes: usize,
    materializations: u64,
    evictions: u64,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    handle: SegmentHandle,
    bytes: usize,
}

impl LazyStore {
    fn new(budget_bytes: usize) -> Self {
        LazyStore {
            budget_bytes,
            inner: Mutex::new(LazyInner::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, LazyInner> {
        // A panic while holding the lock cannot leave partial state (all
        // mutations below are complete before unlock), so recover.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn get(&self, user_idx: usize) -> Option<SegmentHandle> {
        self.lock().entries.get(&user_idx).map(|e| e.handle.clone())
    }

    /// Insert `handle` for `user_idx` (no-op if a racing thread beat us)
    /// and evict FIFO until back under budget. The just-inserted entry
    /// is never evicted — the caller is about to read it.
    fn insert(&self, user_idx: usize, handle: SegmentHandle, bytes: usize) -> SegmentHandle {
        let mut inner = self.lock();
        inner.materializations += 1;
        if let Some(existing) = inner.entries.get(&user_idx) {
            return existing.handle.clone();
        }
        inner.entries.insert(
            user_idx,
            CacheEntry {
                handle: handle.clone(),
                bytes,
            },
        );
        inner.order.push_back(user_idx);
        inner.resident_bytes += bytes;
        while inner.resident_bytes > self.budget_bytes {
            let Some(&front) = inner.order.front() else {
                break;
            };
            if front == user_idx {
                break; // keep the entry being read, even over budget
            }
            inner.order.pop_front();
            if let Some(evicted) = inner.entries.remove(&front) {
                inner.resident_bytes -= evicted.bytes;
                inner.evictions += 1;
            }
        }
        handle
    }

    fn stats(&self) -> LazyStats {
        let inner = self.lock();
        LazyStats {
            resident_bytes: inner.resident_bytes,
            budget_bytes: self.budget_bytes,
            cached_segments: inner.entries.len(),
            materializations: inner.materializations,
            evictions: inner.evictions,
        }
    }
}

/// The id-space layout of a substrate: which users own segments, what
/// the item universe is, and the dense maps over both. Immutable across
/// incremental rebuilds (the universe is fixed at engine construction),
/// hence shared behind one `Arc`.
#[derive(Debug)]
struct UniverseLayout {
    /// Users with (resident or lazy) preference segments (sorted by id).
    users: Vec<UserId>,
    /// `users` position by user id.
    user_pos: Vec<Option<u32>>,
    /// The item universe (sorted, deduplicated).
    items: Vec<ItemId>,
    /// Dense position in `items` by item id ([`NOT_AN_ITEM`] if absent),
    /// so per-query coverage masks are `O(m)`, not `O(max item id)`.
    item_dense: Vec<u32>,
    /// Entries per preference segment (= `items.len()`).
    m: usize,
}

/// The population-level sorted affinity arrays (static + per period).
/// Rating deltas never invalidate these — the paper derives affinity
/// from social signals, and the index itself is append-only — so
/// incremental rebuilds share them wholesale behind one `Arc`.
#[derive(Debug)]
struct AffinityArrays {
    /// Population universe position by user id (for population pair
    /// indexing; the substrate's users may be a subset *or superset* of
    /// the universe — scale-tier worlds serve preference columns for
    /// users outside the group-forming cohort).
    pop_pos: Vec<Option<u32>>,
    /// Population universe size.
    pop_n: usize,
    /// Population pairs ordered by globally-normalized static affinity
    /// descending, with the values.
    static_pairs: Vec<u32>,
    /// Values aligned with `static_pairs`.
    static_values: Vec<f64>,
    /// Per period: population pairs ordered by normalized periodic
    /// affinity descending.
    period_pairs: Vec<Vec<u32>>,
    /// Values aligned with `period_pairs`.
    period_values: Vec<Vec<f64>>,
    /// Per period: rank (position in `period_pairs[p]`) by pair id.
    period_rank: Vec<Vec<u32>>,
}

/// Precomputed sorted-list storage for one `(provider, population,
/// item universe)` triple. See the module docs.
///
/// Storage is split into `Arc`-shared pieces along invalidation
/// boundaries — per-user preference segments, the fixed universe
/// layout, and the rating-independent affinity arrays — so that
/// [`Substrate::rebuild_dirty`] can publish a new epoch's substrate by
/// recomputing only what a delta batch invalidated. Cloning a
/// `Substrate` is always cheap (pointer copies).
#[derive(Debug, Clone)]
pub struct Substrate {
    layout: Arc<UniverseLayout>,
    /// One slot per `layout.users` entry.
    segments: Vec<SegmentSlot>,
    affinity: Arc<AffinityArrays>,
    /// Resident score representation ([`Substrate::rebuild_dirty`]
    /// rebuilds dirty segments in the same representation).
    compression: ScoreCompression,
    /// The on-demand materialization cache (unbounded and unused when
    /// every segment is resident and dense).
    lazy: Arc<LazyStore>,
    /// Whether any slot is [`SegmentSlot::Lazy`].
    has_lazy: bool,
}

impl Substrate {
    /// Precompute the substrate for every user of the population
    /// universe over `items`.
    ///
    /// Cost: one preference-column derivation per universe user (the
    /// work a cold query pays per *member*, paid once per engine
    /// instead), plus one sort per affinity period. Rejects non-finite
    /// preference or affinity values with [`QueryError::NonFiniteScore`]
    /// — the same ingestion contract the cold path enforces per query.
    pub fn build(
        provider: &(dyn PreferenceProvider + Sync + '_),
        population: &PopulationAffinity,
        items: &[ItemId],
    ) -> Result<Self, QueryError> {
        Self::build_for(provider, population, items, population.universe())
    }

    /// Precompute preference segments only for `users` (filtered to the
    /// population universe) — the right call when only a known user
    /// cohort forms groups. Queries touching other users fall back to
    /// cold materialization.
    pub fn build_for(
        provider: &(dyn PreferenceProvider + Sync + '_),
        population: &PopulationAffinity,
        items: &[ItemId],
        users: &[UserId],
    ) -> Result<Self, QueryError> {
        let users: Vec<UserId> = users
            .iter()
            .copied()
            .filter(|&u| population.contains_user(u))
            .collect();
        Self::build_with(
            provider,
            population,
            items,
            &users,
            &[],
            BuildOptions::default(),
        )
    }

    /// Precompute the substrate with explicit residency and storage
    /// options — the scale-tier entry point.
    ///
    /// `eager_users` get resident segments built now (sharded over
    /// [`BuildOptions::threads`] workers, bit-identical to a sequential
    /// build); `lazy_users` get lazy slots whose
    /// columns are derived from the provider on first
    /// [`Substrate::segment_handle`] call and cached under
    /// [`BuildOptions::materialize_budget`]. Unlike
    /// [`Substrate::build_for`], users need **not** belong to the
    /// population universe: a scale-tier world serves preference
    /// columns for its whole user population while only a bounded
    /// cohort (the population universe, whose pair space is quadratic)
    /// forms groups. A user listed in both sets is built eagerly.
    pub fn build_with(
        provider: &(dyn PreferenceProvider + Sync + '_),
        population: &PopulationAffinity,
        items: &[ItemId],
        eager_users: &[UserId],
        lazy_users: &[UserId],
        opts: BuildOptions,
    ) -> Result<Self, QueryError> {
        let mut users: Vec<UserId> = eager_users
            .iter()
            .chain(lazy_users.iter())
            .copied()
            .collect();
        users.sort_unstable();
        users.dedup();
        let mut items: Vec<ItemId> = items.to_vec();
        items.sort_unstable();
        items.dedup();
        let m = items.len();

        let max_user = users.last().map_or(0, |u| u.idx());
        let mut user_pos = vec![None; max_user + 1];
        for (pos, &u) in users.iter().enumerate() {
            user_pos[u.idx()] = Some(pos as u32);
        }
        let max_item = items.last().map_or(0, |i| i.0 as usize);
        let mut item_dense = vec![NOT_AN_ITEM; max_item + 1];
        for (dense, &i) in items.iter().enumerate() {
            item_dense[i.0 as usize] = dense as u32;
        }

        // Which layout slots are eager (eager wins when listed twice).
        let mut eager = vec![false; users.len()];
        for &u in eager_users {
            if let Some(pos) = user_pos.get(u.idx()).copied().flatten() {
                eager[pos as usize] = true;
            }
        }
        let eager_list: Vec<UserId> = users
            .iter()
            .zip(&eager)
            .filter_map(|(&u, &e)| e.then_some(u))
            .collect();
        let built = build_segments_sharded(
            provider,
            &items,
            &eager_list,
            opts.workers_for(eager_list.len()),
            opts.compression,
        )?;
        let mut built = built.into_iter();
        let segments: Vec<SegmentSlot> = eager
            .iter()
            .map(|&e| {
                if e {
                    SegmentSlot::Resident(built.next().expect("one segment per eager user"))
                } else {
                    SegmentSlot::Lazy
                }
            })
            .collect();
        let has_lazy = segments.iter().any(|s| matches!(s, SegmentSlot::Lazy));

        let affinity = affinity_arrays(population)?;
        Ok(Substrate {
            layout: Arc::new(UniverseLayout {
                users,
                user_pos,
                items,
                item_dense,
                m,
            }),
            segments,
            affinity: Arc::new(affinity),
            compression: opts.compression,
            lazy: Arc::new(LazyStore::new(
                opts.materialize_budget.unwrap_or(usize::MAX),
            )),
            has_lazy,
        })
    }

    /// A new substrate with only `dirty_users`' preference segments
    /// recomputed from `provider`, structurally sharing everything else
    /// with `self`: clean segments alias the same `Arc`s (pointer
    /// copies), as do the universe layout and the affinity arrays.
    ///
    /// This is the incremental-epoch step of the live-ingestion path:
    /// cost is `O(|dirty ∩ users| · m log m)` provider calls and sorts
    /// plus `O(|users|)` pointer copies, versus the full
    /// [`Substrate::build`]'s `O(|universe| · m log m)`. Dirty users
    /// without a segment here (outside the precomputed cohort) are
    /// skipped — their queries fall back to cold materialization either
    /// way. Dirty users with a *lazy* slot need no rebuild: the new
    /// epoch starts with a **fresh, empty materialization cache** (a
    /// shared cache could hand the new epoch a column the old epoch's
    /// provider derived), so their next access re-derives from
    /// `provider`. The caller supplies the dirty set (see `greca-cf`'s
    /// `DeltaBatch::dirty_set`) and a provider already fitted on the
    /// *post-batch* ratings.
    ///
    /// The result is a distinct value: in-flight queries keep reading
    /// the old epoch's segments untouched (they hold their own `Arc`s),
    /// which is what makes the epoch swap safe without locks on the
    /// read path.
    pub fn rebuild_dirty(
        &self,
        provider: &(dyn PreferenceProvider + Sync + '_),
        dirty_users: &[UserId],
    ) -> Result<Self, QueryError> {
        let mut segments = self.segments.clone();
        let mut scratch = SegmentScratch::new(self.layout.m);
        for &u in dirty_users {
            if let Some(idx) = self.user_index(u) {
                if matches!(self.segments[idx], SegmentSlot::Resident(_)) {
                    segments[idx] = SegmentSlot::Resident(build_one_segment(
                        provider,
                        u,
                        &self.layout.items,
                        self.compression,
                        &mut scratch,
                    )?);
                }
            }
        }
        Ok(Substrate {
            layout: Arc::clone(&self.layout),
            segments,
            affinity: Arc::clone(&self.affinity),
            compression: self.compression,
            lazy: Arc::new(LazyStore::new(self.lazy.budget_bytes)),
            has_lazy: self.has_lazy,
        })
    }

    /// Whether `u`'s preference segment is the *same allocation* in both
    /// substrates (structural sharing across an incremental rebuild).
    /// `false` when either side lacks a resident segment for `u`.
    pub fn shares_segment_with(&self, other: &Substrate, u: UserId) -> bool {
        match (self.user_index(u), other.user_index(u)) {
            (Some(a), Some(b)) => match (&self.segments[a], &other.segments[b]) {
                (SegmentSlot::Resident(x), SegmentSlot::Resident(y)) => Arc::ptr_eq(x, y),
                _ => false,
            },
            _ => false,
        }
    }

    /// Whether both substrates alias the same affinity arrays (they
    /// always do across [`Substrate::rebuild_dirty`]).
    pub fn shares_affinity_with(&self, other: &Substrate) -> bool {
        Arc::ptr_eq(&self.affinity, &other.affinity)
    }

    /// Users with (resident or lazy) preference segments.
    pub fn users(&self) -> &[UserId] {
        &self.layout.users
    }

    /// The item universe (sorted, deduplicated).
    pub fn items(&self) -> &[ItemId] {
        &self.layout.items
    }

    /// Number of items per preference segment.
    pub fn num_items(&self) -> usize {
        self.layout.m
    }

    /// Number of indexed periods.
    pub fn num_periods(&self) -> usize {
        self.affinity.period_pairs.len()
    }

    /// The resident score representation.
    pub fn compression(&self) -> ScoreCompression {
        self.compression
    }

    /// Whether any user's segment is materialized on demand.
    pub fn has_lazy_segments(&self) -> bool {
        self.has_lazy
    }

    /// Counters of the materialization cache (resident bytes, budget,
    /// materializations, evictions).
    pub fn lazy_stats(&self) -> LazyStats {
        self.lazy.stats()
    }

    /// Worst-case absolute error of any dequantized score served by a
    /// *resident* segment: `0` for dense and exact-dictionary segments,
    /// `step/2` for linear-table segments (lists with more than
    /// [`QUANT_LEVELS`] distinct values). Lazily materialized columns
    /// are stored dense and are always exact.
    pub fn quant_error_bound(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| match s {
                SegmentSlot::Resident(seg) => seg.store.error_bound(),
                SegmentSlot::Lazy => 0.0,
            })
            .fold(0.0, f64::max)
    }

    /// Approximate resident size of the preference buffers, in bytes
    /// (counts each shared segment once per substrate that references
    /// it; lazy slots count nothing — their cached columns are reported
    /// by [`Substrate::lazy_stats`]).
    pub fn pref_bytes(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                SegmentSlot::Resident(seg) => seg.data_bytes(),
                SegmentSlot::Lazy => 0,
            })
            .sum()
    }

    /// Resident data bytes per storage layer — the capacity-planning
    /// view of this substrate (see [`MemoryFootprint`] for the counting
    /// rules). Surfaced by `engine_baseline`'s and `world_scale`'s JSON
    /// artifacts and the serving layer's `stats` verb.
    ///
    /// Layer by layer:
    ///
    /// * `universe_bytes` — the id maps of the universe layout (user
    ///   list, user-position map, item list, dense item map). Fixed at
    ///   build time; shared across every epoch of a live engine.
    /// * `pref_bytes` — the **resident** preference segments in their
    ///   stored representation: `u32` id + `f64` score columns for
    ///   [`ScoreCompression::F64`] (12 B/item), `u32` id + `u16` code
    ///   columns plus the per-list dequant table for
    ///   [`ScoreCompression::Quantized`] (6 B/item + table). Lazy slots
    ///   contribute 0 until materialized.
    /// * `affinity_bytes` — the population pair arrays (static +
    ///   per-period sorted columns and rank inverses); quadratic in the
    ///   population cohort, shared wholesale across epochs.
    /// * `lazy_bytes` — the materialization cache: dense columns built
    ///   on demand for lazy users and dequantized buffers for quantized
    ///   segments. This is the only layer with *budgeted eviction*:
    ///   once it exceeds [`BuildOptions::materialize_budget`], entries
    ///   leave FIFO (oldest first) until the cache fits; the entry
    ///   being handed out is never evicted, and in-flight
    ///   [`SegmentHandle`]s own `Arc`s into their buffers, so eviction
    ///   frees memory only after the last reader drops. An evicted
    ///   user's next access re-derives the column (counted in
    ///   [`LazyStats::materializations`]).
    pub fn memory_footprint(&self) -> MemoryFootprint {
        use std::mem::size_of;
        let layout = &self.layout;
        let universe_bytes = layout.users.len() * size_of::<UserId>()
            + layout.user_pos.len() * size_of::<Option<u32>>()
            + layout.items.len() * size_of::<ItemId>()
            + layout.item_dense.len() * size_of::<u32>();
        let aff = &self.affinity;
        let pair_cols = |pairs: &[u32], values: &[f64]| {
            std::mem::size_of_val(pairs) + std::mem::size_of_val(values)
        };
        let mut affinity_bytes = aff.pop_pos.len() * size_of::<Option<u32>>()
            + pair_cols(&aff.static_pairs, &aff.static_values);
        for p in 0..aff.period_pairs.len() {
            affinity_bytes += pair_cols(&aff.period_pairs[p], &aff.period_values[p])
                + aff.period_rank[p].len() * size_of::<u32>();
        }
        MemoryFootprint {
            universe_bytes,
            pref_bytes: self.pref_bytes(),
            affinity_bytes,
            lazy_bytes: self.lazy.stats().resident_bytes,
        }
    }

    /// Position of `u` among the substrate's users, if covered
    /// (resident or lazy).
    pub fn user_index(&self, u: UserId) -> Option<usize> {
        self.layout
            .user_pos
            .get(u.idx())
            .copied()
            .flatten()
            .map(|p| p as usize)
    }

    /// Whether every member of `group` has a (resident or lazy)
    /// preference segment.
    pub fn covers_group(&self, group: &Group) -> bool {
        group
            .members()
            .iter()
            .all(|&u| self.user_index(u).is_some())
    }

    /// Population pair index of `(u, v)` (triangular over the population
    /// universe — the id space of the affinity arrays).
    pub fn population_pair_of(&self, u: UserId, v: UserId) -> Option<usize> {
        if u == v {
            return None;
        }
        let aff = &self.affinity;
        let pu = aff.pop_pos.get(u.idx()).copied().flatten()?;
        let pv = aff.pop_pos.get(v.idx()).copied().flatten()?;
        let (a, b) = (pu.min(pv) as usize, pu.max(pv) as usize);
        Some(a * aff.pop_n - a * (a + 1) / 2 + (b - a - 1))
    }

    /// Whether this substrate was built from exactly this population
    /// index: same universe, same pair space, same period count. The
    /// invariant
    /// [`GrecaEngine::with_substrate`](crate::query::GrecaEngine::with_substrate)
    /// enforces — a substrate answering for a *different* index would
    /// silently rank by the wrong affinity arrays. (The substrate's
    /// *user coverage* may exceed the universe; only the affinity pair
    /// space must match.)
    pub fn is_compatible_with(&self, population: &PopulationAffinity) -> bool {
        let universe = population.universe();
        let aff = &self.affinity;
        aff.pop_n == universe.len()
            && aff.static_pairs.len() == population.num_pairs()
            && aff.period_pairs.len() == population.num_periods()
            && universe
                .iter()
                .enumerate()
                .all(|(pos, u)| aff.pop_pos.get(u.idx()).copied().flatten() == Some(pos as u32))
    }

    /// How `items` relates to the universe, or `None` when the substrate
    /// cannot serve it (an item outside the universe, or a duplicate —
    /// the cold path handles those verbatim). `O(m)` per call: the mask
    /// is over dense item positions, not raw item ids.
    pub fn item_coverage(&self, items: &[ItemId]) -> Option<ItemCoverage> {
        let mut mask = vec![false; self.layout.m];
        for &i in items {
            let dense = self.dense_of(i)?;
            if mask[dense] {
                return None;
            }
            mask[dense] = true;
        }
        if items.len() == self.layout.m {
            Some(ItemCoverage::Full)
        } else {
            Some(ItemCoverage::Subset(mask))
        }
    }

    /// Dense position of an item in the universe.
    #[inline]
    fn dense_of(&self, i: ItemId) -> Option<usize> {
        match self.layout.item_dense.get(i.0 as usize).copied() {
            Some(d) if d != NOT_AN_ITEM => Some(d as usize),
            _ => None,
        }
    }

    /// An owned handle to the user's preference columns, materializing
    /// them if needed: resident dense segments are handed out directly
    /// (zero copies), resident quantized segments get their dequantized
    /// buffer from the cache (derived once, then shared), lazy slots
    /// derive the column from `provider` and cache it under the budget.
    ///
    /// This is the access path every reader should use; the returned
    /// handle owns whatever the views borrow, so cache eviction can
    /// never invalidate it.
    pub fn segment_handle(
        &self,
        provider: &(dyn PreferenceProvider + Sync + '_),
        user_idx: usize,
    ) -> Result<SegmentHandle, QueryError> {
        match &self.segments[user_idx] {
            SegmentSlot::Resident(seg) => match &seg.store {
                ScoreStore::Dense(_) => Ok(SegmentHandle {
                    seg: Arc::clone(seg),
                    dequant: None,
                }),
                ScoreStore::Quantized { codes, dequant } => {
                    if let Some(h) = self.lazy.get(user_idx) {
                        return Ok(h);
                    }
                    let buf: Vec<f64> = codes.iter().map(|&c| dequant.value(c)).collect();
                    let bytes = std::mem::size_of_val(buf.as_slice());
                    let handle = SegmentHandle {
                        seg: Arc::clone(seg),
                        dequant: Some(Arc::new(buf)),
                    };
                    Ok(self.lazy.insert(user_idx, handle, bytes))
                }
            },
            SegmentSlot::Lazy => {
                if let Some(h) = self.lazy.get(user_idx) {
                    return Ok(h);
                }
                // Lazily derived columns are stored dense even in a
                // quantized substrate: the cache would otherwise hold
                // codes *and* the dequantized buffer, which costs more
                // than the dense column alone.
                let mut scratch = SegmentScratch::new(self.layout.m);
                let seg = build_one_segment(
                    provider,
                    self.layout.users[user_idx],
                    &self.layout.items,
                    ScoreCompression::F64,
                    &mut scratch,
                )?;
                let bytes = seg.data_bytes();
                let handle = SegmentHandle { seg, dequant: None };
                Ok(self.lazy.insert(user_idx, handle, bytes))
            }
        }
    }

    /// The zero-copy preference view of the **resident, dense** segment
    /// at `user_idx`, labeled as group member `member`.
    ///
    /// # Panics
    ///
    /// On quantized or lazy segments — those need an owning
    /// [`SegmentHandle`]; use [`Substrate::segment_handle`].
    pub fn pref_view(&self, user_idx: usize, member: u32) -> ListView<'_> {
        match &self.segments[user_idx] {
            SegmentSlot::Resident(seg) => match &seg.store {
                ScoreStore::Dense(scores) => {
                    ListView::new(ListKind::Preference { member }, &seg.ids, scores)
                }
                ScoreStore::Quantized { .. } => {
                    panic!("pref_view on a quantized segment; use segment_handle")
                }
            },
            SegmentSlot::Lazy => panic!("pref_view on a lazy segment; use segment_handle"),
        }
    }

    /// The handle's preference columns filtered to a subset itemset
    /// (`mask` by dense item position, `len` items), preserving the
    /// sorted order — one linear pass, no sort, no provider calls.
    pub fn filtered_pref_list(
        &self,
        handle: &SegmentHandle,
        member: u32,
        mask: &[bool],
        len: usize,
    ) -> SortedList {
        let seg_ids = handle.ids();
        let seg_scores = handle.scores();
        let mut ids = Vec::with_capacity(len);
        let mut scores = Vec::with_capacity(len);
        for (pos, &id) in seg_ids.iter().enumerate() {
            // Segment ids always belong to the universe; the dense
            // lookup cannot miss.
            let dense = self.layout.item_dense[id as usize] as usize;
            if mask[dense] {
                ids.push(id);
                scores.push(seg_scores[pos]);
            }
        }
        SortedList::from_sorted_columns(ListKind::Preference { member }, ids, scores)
    }

    /// [`Substrate::filtered_pref_list`] stored member-agnostic (kind
    /// `member: 0`): the filter output depends only on the segment and
    /// the mask, so one pass is shareable across every query whose group
    /// places the user at a different member index — consumers re-kind
    /// the columns to their own index at view assembly (see
    /// [`SortedList::view_as`]).
    pub fn shared_pref_list(
        &self,
        handle: &SegmentHandle,
        mask: &[bool],
        len: usize,
    ) -> SortedList {
        self.filtered_pref_list(handle, 0, mask, len)
    }

    /// Population-wide static affinity as one descending view. Entry ids
    /// are **population** pair indices (unlike per-query lists, whose ids
    /// are group pair indices).
    pub fn static_view(&self) -> ListView<'_> {
        ListView::new(
            ListKind::StaticAffinity,
            &self.affinity.static_pairs,
            &self.affinity.static_values,
        )
    }

    /// Population-wide periodic affinity of one period as a descending
    /// view (entry ids are population pair indices).
    pub fn period_view(&self, p_idx: usize) -> ListView<'_> {
        ListView::new(
            ListKind::PeriodicAffinity {
                period: p_idx as u32,
            },
            &self.affinity.period_pairs[p_idx],
            &self.affinity.period_values[p_idx],
        )
    }

    /// Order `(group pair id, population pair id)` tuples by the given
    /// period's precomputed rank.
    ///
    /// Both the population order and a per-group sort order lists by
    /// (component descending, pair id ascending), and restricting the
    /// population's triangular id order to a group preserves the group's
    /// triangular order — so the result is *identical* to sorting the
    /// group's component values, without touching a float.
    pub fn order_pairs_by_period_rank(&self, p_idx: usize, pairs: &mut [(u32, usize)]) {
        let rank = &self.affinity.period_rank[p_idx];
        pairs.sort_by_key(|&(_, pop_pair)| rank[pop_pair]);
    }
}

/// Snapshot the population index into sorted pair arrays (+ rank
/// inverses), validating finiteness.
fn affinity_arrays(population: &PopulationAffinity) -> Result<AffinityArrays, QueryError> {
    let universe = population.universe();
    let max_pop = universe.last().map_or(0, |u| u.idx());
    let mut pop_pos = vec![None; max_pop + 1];
    for (pos, &u) in universe.iter().enumerate() {
        pop_pos[u.idx()] = Some(pos as u32);
    }

    let (static_pairs, static_values) = population.static_sorted_desc();
    reject_non_finite(ListKind::StaticAffinity, &static_pairs, &static_values)?;
    let mut period_pairs = Vec::with_capacity(population.num_periods());
    let mut period_values = Vec::with_capacity(population.num_periods());
    let mut period_rank = Vec::with_capacity(population.num_periods());
    for p in 0..population.num_periods() {
        let (pairs, values) = population.period_sorted_desc(p);
        reject_non_finite(
            ListKind::PeriodicAffinity { period: p as u32 },
            &pairs,
            &values,
        )?;
        let mut rank = vec![0u32; pairs.len()];
        for (pos, &pair) in pairs.iter().enumerate() {
            rank[pair as usize] = pos as u32;
        }
        period_pairs.push(pairs);
        period_values.push(values);
        period_rank.push(rank);
    }
    Ok(AffinityArrays {
        pop_pos,
        pop_n: universe.len(),
        static_pairs,
        static_values,
        period_pairs,
        period_values,
        period_rank,
    })
}

/// Reusable per-worker scratch for segment construction: one provider
/// score per dense item position plus the index buffer the sort runs
/// over — no per-user allocations.
struct SegmentScratch {
    scores: Vec<f64>,
    idx: Vec<u32>,
    head: Vec<(u32, f64)>,
}

impl SegmentScratch {
    fn new(m: usize) -> Self {
        SegmentScratch {
            scores: vec![0.0; m],
            idx: Vec::with_capacity(m),
            head: Vec::new(),
        }
    }
}

/// Build one user's segment: fill scores from the provider, order
/// entries by (score descending, item id ascending), compress.
///
/// Ordering is bit-identical to
/// `provider.preference_list(u, items)?.into_sorted_columns()` — the
/// path substrate construction used before sharding — at a fraction of
/// the cost: since the provider contract demands `apref ≥ 0`, only
/// positive entries need comparisons; the `±0.0` tail is emitted in id
/// order (exactly where a full sort would put it, in the order its ties
/// resolve). A contract-violating negative score falls back to the full
/// sort so the equivalence holds for *any* finite input.
fn build_one_segment(
    provider: &(dyn PreferenceProvider + Sync + '_),
    u: UserId,
    items: &[ItemId],
    compression: ScoreCompression,
    scratch: &mut SegmentScratch,
) -> Result<Arc<PrefSegment>, QueryError> {
    let m = items.len();
    debug_assert_eq!(scratch.scores.len(), m);
    // Sparse fast path: a provider that can enumerate its nonzero
    // entries lets us skip the dense column entirely — no `O(m)` zero
    // fill, no `O(m)` validation scan, no `O(m)` index buffer. Only a
    // head of `r ≪ m` entries is touched; the tail is synthesized in id
    // order. A `-0.0` or negative entry (which the sparse tail cannot
    // represent bit-exactly) falls back to the dense path below.
    scratch.head.clear();
    if provider.sparse_aprefs(u, items, &mut scratch.head) {
        let mut dense_fallback = false;
        for &(d, s) in &scratch.head {
            if !s.is_finite() {
                return Err(QueryError::from(NonFiniteScore {
                    user: u,
                    item: items[d as usize],
                    value: s,
                }));
            }
            dense_fallback |= !(s > 0.0 || s.to_bits() == 0);
        }
        if !dense_fallback {
            return Ok(build_from_sparse_head(items, scratch, compression));
        }
    }
    // One batched (virtual) provider call per user, then validate the
    // filled column — sparse providers fill it in `O(r + m)`.
    provider.fill_aprefs(u, items, &mut scratch.scores);
    let mut any_negative = false;
    for (d, &s) in scratch.scores.iter().enumerate() {
        if !s.is_finite() {
            return Err(QueryError::from(NonFiniteScore {
                user: u,
                item: items[d],
                value: s,
            }));
        }
        any_negative |= s < 0.0;
    }
    let scores = &scratch.scores;
    scratch.idx.clear();
    if any_negative {
        scratch.idx.extend(0..m as u32);
        scratch.idx.sort_unstable_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .expect("validated finite above")
                .then_with(|| a.cmp(&b))
        });
    } else {
        // Positive head, sorted; ±0.0 tail in id order (items are id-
        // ascending, so dense order *is* id order).
        scratch
            .idx
            .extend((0..m as u32).filter(|&d| scores[d as usize] > 0.0));
        scratch.idx.sort_unstable_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .expect("validated finite above")
                .then_with(|| a.cmp(&b))
        });
        scratch
            .idx
            .extend((0..m as u32).filter(|&d| scores[d as usize] <= 0.0));
    }
    let ids: Vec<u32> = scratch.idx.iter().map(|&d| items[d as usize].0).collect();
    let ordered: Vec<f64> = scratch.idx.iter().map(|&d| scores[d as usize]).collect();
    Ok(Arc::new(PrefSegment {
        ids,
        store: ScoreStore::from_scores(ordered, compression),
    }))
}

/// Assemble a segment from a validated sparse head (`scratch.head`,
/// ascending dense index, all entries `> 0.0` or exactly `+0.0`):
/// strictly positive entries sort by (score descending, id ascending);
/// every other position — explicit `+0.0` entries and the implicit
/// unrated remainder alike — is the tail, emitted in id order. This is
/// bit-identical to the dense path over the equivalent column: the head
/// uses the same comparator, and the tail positions are exactly those
/// the dense path's `!(s > 0.0)` filter would keep, in the same order.
fn build_from_sparse_head(
    items: &[ItemId],
    scratch: &mut SegmentScratch,
    compression: ScoreCompression,
) -> Arc<PrefSegment> {
    let m = items.len();
    scratch.head.retain(|&(_, s)| s > 0.0);
    // Ascending head indices double as the tail's skip list; save them
    // before the score sort destroys the order.
    scratch.idx.clear();
    scratch.idx.extend(scratch.head.iter().map(|&(d, _)| d));
    scratch.head.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("validated finite by caller")
            .then_with(|| a.0.cmp(&b.0))
    });
    let mut ids: Vec<u32> = Vec::with_capacity(m);
    ids.extend(scratch.head.iter().map(|&(d, _)| items[d as usize].0));
    let mut skip = scratch.idx.iter().copied().peekable();
    for d in 0..m as u32 {
        if skip.peek() == Some(&d) {
            skip.next();
            continue;
        }
        ids.push(items[d as usize].0);
    }
    let mut ordered: Vec<f64> = Vec::with_capacity(m);
    ordered.extend(scratch.head.iter().map(|&(_, s)| s));
    ordered.resize(m, 0.0);
    Arc::new(PrefSegment {
        ids,
        store: ScoreStore::from_scores(ordered, compression),
    })
}

/// Build resident segments for `users` over `threads` contiguous user
/// shards, merged back in user order — bit-identical to a sequential
/// build (each segment depends only on its user and the provider).
fn build_segments_sharded(
    provider: &(dyn PreferenceProvider + Sync + '_),
    items: &[ItemId],
    users: &[UserId],
    threads: usize,
    compression: ScoreCompression,
) -> Result<Vec<Arc<PrefSegment>>, QueryError> {
    let threads = threads.max(1).min(users.len().max(1));
    if threads == 1 {
        let mut scratch = SegmentScratch::new(items.len());
        return users
            .iter()
            .map(|&u| build_one_segment(provider, u, items, compression, &mut scratch))
            .collect();
    }
    let chunk = users.len().div_ceil(threads);
    let shards: Vec<&[UserId]> = users.chunks(chunk).collect();
    let results: Vec<Result<Vec<Arc<PrefSegment>>, QueryError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                scope.spawn(move || {
                    let mut scratch = SegmentScratch::new(items.len());
                    shard
                        .iter()
                        .map(|&u| build_one_segment(provider, u, items, compression, &mut scratch))
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("segment shard worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(users.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// Reject a non-finite value in a population-level sorted array — the
/// ingestion-time counterpart of the cold path's per-query
/// `SortedList::new` validation. Without it a warm engine would compute
/// silently wrong bounds from a NaN the cold path turns into a typed
/// error (debug builds catch this earlier via the affinity sources'
/// `debug_assert`s; this is the release-build guarantee).
fn reject_non_finite(kind: ListKind, pairs: &[u32], values: &[f64]) -> Result<(), QueryError> {
    for (&id, &value) in pairs.iter().zip(values) {
        if !value.is_finite() {
            return Err(QueryError::from(NonFiniteEntry { kind, id, value }));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use greca_affinity::TableAffinitySource;
    use greca_cf::RawRatings;
    use greca_dataset::{Granularity, RatingMatrixBuilder, Timeline};

    fn world() -> (greca_dataset::RatingMatrix, PopulationAffinity, Timeline) {
        let mut b = RatingMatrixBuilder::new(3, 4);
        b.rate(UserId(0), ItemId(0), 5.0, 0)
            .rate(UserId(0), ItemId(2), 3.0, 0)
            .rate(UserId(1), ItemId(1), 4.0, 0)
            .rate(UserId(2), ItemId(3), 2.0, 0)
            .rate(UserId(2), ItemId(0), 1.0, 0);
        let matrix = b.build();
        let mut src = TableAffinitySource::new();
        src.set_static(UserId(0), UserId(1), 1.0)
            .set_static(UserId(0), UserId(2), 0.2)
            .set_static(UserId(1), UserId(2), 0.7);
        let tl = Timeline::discretize(0, 100, Granularity::Custom(50)).unwrap();
        let (p1, p2) = (tl.periods()[0], tl.periods()[1]);
        src.set_periodic(UserId(0), UserId(1), p1.start, 0.8)
            .set_periodic(UserId(1), UserId(2), p1.start, 0.9)
            .set_periodic(UserId(0), UserId(1), p2.start, 0.7);
        let users = vec![UserId(0), UserId(1), UserId(2)];
        let pop = PopulationAffinity::build(&src, &users, &tl);
        (matrix, pop, tl)
    }

    #[test]
    fn segments_are_sorted_and_zero_copy() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let sub = Substrate::build(&raw, &pop, &items).unwrap();
        assert_eq!(sub.users(), &[UserId(0), UserId(1), UserId(2)]);
        assert_eq!(sub.num_items(), 4);
        for u in 0..3 {
            let v = sub.pref_view(u, u as u32);
            assert_eq!(v.len(), 4);
            for w in v.scores.windows(2) {
                assert!(w[0] >= w[1]);
            }
        }
        // User 0: rated items 0 (5.0) and 2 (3.0); 1, 3 unrated → 0.0,
        // tie-broken by id.
        let v0 = sub.pref_view(0, 0);
        assert_eq!(v0.ids, &[0, 2, 1, 3]);
        assert_eq!(v0.scores, &[5.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn sharded_build_matches_sequential_and_legacy() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let users: Vec<UserId> = pop.universe().to_vec();
        let seq = Substrate::build_with(
            &raw,
            &pop,
            &items,
            &users,
            &[],
            BuildOptions {
                threads: 1,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let par = Substrate::build_with(
            &raw,
            &pop,
            &items,
            &users,
            &[],
            BuildOptions {
                threads: 3,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        for u in 0..3 {
            // Bit-identical across thread counts and vs. the legacy
            // per-user preference_list path.
            let legacy = raw
                .preference_list(UserId(u as u32), &items)
                .unwrap()
                .into_sorted_columns();
            assert_eq!(seq.pref_view(u, 0).ids, par.pref_view(u, 0).ids);
            assert_eq!(seq.pref_view(u, 0).scores, par.pref_view(u, 0).scores);
            assert_eq!(seq.pref_view(u, 0).ids, &legacy.0[..]);
            assert_eq!(seq.pref_view(u, 0).scores, &legacy.1[..]);
        }
    }

    #[test]
    fn quantized_segments_are_bit_identical_and_smaller() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let users: Vec<UserId> = pop.universe().to_vec();
        let dense = Substrate::build(&raw, &pop, &items).unwrap();
        let quant = Substrate::build_with(
            &raw,
            &pop,
            &items,
            &users,
            &[],
            BuildOptions {
                compression: ScoreCompression::Quantized,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        assert_eq!(quant.compression(), ScoreCompression::Quantized);
        assert_eq!(quant.quant_error_bound(), 0.0, "dict mode is exact");
        for u in 0..3 {
            let d = dense.pref_view(u, 0);
            let h = quant.segment_handle(&raw, u).unwrap();
            let q = h.view(0);
            assert_eq!(d.ids, q.ids);
            // Bit identity, not just numeric equality.
            let db: Vec<u64> = d.scores.iter().map(|s| s.to_bits()).collect();
            let qb: Vec<u64> = q.scores.iter().map(|s| s.to_bits()).collect();
            assert_eq!(db, qb);
        }
        assert!(
            quant.pref_bytes() < dense.pref_bytes(),
            "codes beat floats: {} vs {}",
            quant.pref_bytes(),
            dense.pref_bytes()
        );
        // Dequant buffers are cached, not rebuilt per access.
        let before = quant.lazy_stats().materializations;
        let _ = quant.segment_handle(&raw, 0).unwrap();
        assert_eq!(quant.lazy_stats().materializations, before);
    }

    #[test]
    fn linear_quantization_error_is_bounded() {
        // A synthetic column with > QUANT_LEVELS distinct values forces
        // the lossy linear table.
        let n = QUANT_LEVELS + 10;
        let scores: Vec<f64> = (0..n).map(|i| (n - i) as f64 * 0.001).collect();
        let store = quantize(&scores);
        let bound = store.error_bound();
        assert!(bound > 0.0, "linear mode has a nonzero bound");
        let ScoreStore::Quantized { codes, dequant } = &store else {
            panic!("expected quantized store");
        };
        let mut prev = f64::INFINITY;
        for (i, &c) in codes.iter().enumerate() {
            let v = dequant.value(c);
            assert!(
                (v - scores[i]).abs() <= bound * 1.000001,
                "error {} exceeds bound {bound}",
                (v - scores[i]).abs()
            );
            assert!(v <= prev, "dequantized column stays descending");
            prev = v;
        }
    }

    #[test]
    fn lazy_segments_materialize_and_evict_under_budget() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let users: Vec<UserId> = pop.universe().to_vec();
        // Budget fits exactly one 4-item dense column (4×12 = 48 B).
        let sub = Substrate::build_with(
            &raw,
            &pop,
            &items,
            &[],
            &users,
            BuildOptions {
                materialize_budget: Some(48),
                ..BuildOptions::default()
            },
        )
        .unwrap();
        assert!(sub.has_lazy_segments());
        assert_eq!(sub.pref_bytes(), 0, "nothing resident up front");
        assert_eq!(sub.memory_footprint().lazy_bytes, 0);

        let h0 = sub.segment_handle(&raw, 0).unwrap();
        assert_eq!(h0.view(0).ids, &[0, 2, 1, 3]);
        assert_eq!(sub.lazy_stats().cached_segments, 1);
        let h1 = sub.segment_handle(&raw, 1).unwrap();
        let stats = sub.lazy_stats();
        assert_eq!(stats.cached_segments, 1, "budget holds one column");
        assert_eq!(stats.evictions, 1);
        assert!(stats.resident_bytes <= 48);
        // The evicted user's handle still reads correctly (it owns its
        // buffers), and re-access re-materializes.
        assert_eq!(h0.view(0).ids, &[0, 2, 1, 3]);
        assert_eq!(h1.view(1).ids.len(), 4);
        let before = sub.lazy_stats().materializations;
        let h0b = sub.segment_handle(&raw, 0).unwrap();
        assert_eq!(h0b.view(0).ids, &[0, 2, 1, 3]);
        assert_eq!(sub.lazy_stats().materializations, before + 1);
    }

    #[test]
    fn build_with_covers_users_outside_the_population() {
        // Scale-tier shape: the population cohort is users {0,1,2}, but
        // the substrate also serves preference columns for user 3.
        let mut b = RatingMatrixBuilder::new(4, 4);
        b.rate(UserId(0), ItemId(0), 5.0, 0)
            .rate(UserId(3), ItemId(1), 4.0, 0)
            .rate(UserId(3), ItemId(2), 2.0, 0);
        let matrix = b.build();
        let raw = RawRatings(&matrix);
        let (_, pop, _tl) = world();
        let items: Vec<ItemId> = matrix.items().collect();
        let sub = Substrate::build_with(
            &raw,
            &pop,
            &items,
            &[UserId(0), UserId(3)],
            &[],
            BuildOptions::default(),
        )
        .unwrap();
        assert_eq!(sub.users(), &[UserId(0), UserId(3)]);
        let h = sub.segment_handle(&raw, 1).unwrap();
        assert_eq!(h.view(0).ids, &[1, 2, 0, 3]);
        // Affinity pair space still follows the population.
        assert!(sub.is_compatible_with(&pop));
        assert_eq!(sub.population_pair_of(UserId(0), UserId(3)), None);
    }

    #[test]
    fn item_coverage_classification() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let sub = Substrate::build(&raw, &pop, &items).unwrap();
        assert_eq!(sub.item_coverage(&items), Some(ItemCoverage::Full));
        // Order does not matter for coverage.
        let shuffled = vec![ItemId(3), ItemId(0), ItemId(2), ItemId(1)];
        assert_eq!(sub.item_coverage(&shuffled), Some(ItemCoverage::Full));
        match sub.item_coverage(&[ItemId(1), ItemId(3)]) {
            Some(ItemCoverage::Subset(mask)) => {
                // Mask is over dense positions; this world's items are
                // 0..4, so dense position == item id.
                assert!(mask[1] && mask[3] && !mask[0] && !mask[2]);
            }
            other => panic!("expected subset, got {other:?}"),
        }
        // Foreign item and duplicates disqualify the substrate.
        assert_eq!(sub.item_coverage(&[ItemId(9)]), None);
        assert_eq!(sub.item_coverage(&[ItemId(1), ItemId(1)]), None);
    }

    #[test]
    fn filtered_segment_preserves_order() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let sub = Substrate::build(&raw, &pop, &items).unwrap();
        let mut mask = vec![false; 4];
        mask[0] = true;
        mask[3] = true;
        let h = sub.segment_handle(&raw, 0).unwrap();
        let l = sub.filtered_pref_list(&h, 0, &mask, 2);
        let v = l.as_view();
        assert_eq!(v.ids, &[0, 3]);
        assert_eq!(v.scores, &[5.0, 0.0]);
    }

    #[test]
    fn population_views_are_descending_and_ranked() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let sub = Substrate::build(&raw, &pop, &items).unwrap();
        let sv = sub.static_view();
        assert_eq!(sv.len(), 3);
        for w in sv.scores.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(sub.num_periods(), 2);
        for p in 0..2 {
            let pv = sub.period_view(p);
            for w in pv.scores.windows(2) {
                assert!(w[0] >= w[1]);
            }
        }
        // Rank ordering of all three pairs reproduces the period view's
        // pair order.
        let mut pairs: Vec<(u32, usize)> = (0..3).map(|p| (p as u32, p)).collect();
        sub.order_pairs_by_period_rank(0, &mut pairs);
        let got: Vec<u32> = pairs.iter().map(|&(_, pop_pair)| pop_pair as u32).collect();
        assert_eq!(got, sub.period_view(0).ids);
    }

    #[test]
    fn memory_footprint_accounts_every_layer() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let sub = Substrate::build(&raw, &pop, &items).unwrap();
        let fp = sub.memory_footprint();
        assert_eq!(fp.pref_bytes, sub.pref_bytes());
        // 3 users × 4 items × (u32 id + f64 score).
        assert_eq!(fp.pref_bytes, 3 * 4 * 12);
        assert!(fp.universe_bytes > 0, "layout maps counted");
        assert!(fp.affinity_bytes > 0, "affinity arrays counted");
        assert_eq!(fp.lazy_bytes, 0, "no on-demand materializations yet");
        assert_eq!(
            fp.total(),
            fp.universe_bytes + fp.pref_bytes + fp.affinity_bytes + fp.lazy_bytes
        );
        let json = fp.to_json();
        assert!(json.contains("\"total_bytes\"") && json.contains("\"pref_bytes\""));
        assert!(json.contains("\"lazy_bytes\""));
    }

    #[test]
    fn compatibility_rejects_foreign_population() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let sub = Substrate::build(&raw, &pop, &items).unwrap();
        assert!(sub.is_compatible_with(&pop));
        // A static-only index over the same users: different period
        // count → incompatible.
        let mut src = TableAffinitySource::new();
        src.set_static(UserId(0), UserId(1), 0.5);
        let other = PopulationAffinity::new_static_only(&src, &[UserId(0), UserId(1), UserId(2)]);
        assert!(!sub.is_compatible_with(&other));
        // A different universe → incompatible.
        let wider = PopulationAffinity::new_static_only(
            &src,
            &[UserId(0), UserId(1), UserId(2), UserId(7)],
        );
        assert!(!sub.is_compatible_with(&wider));
    }

    #[test]
    fn rebuild_dirty_shares_clean_segments() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let sub = Substrate::build(&raw, &pop, &items).unwrap();

        // User 1 rates item 3: only their segment is invalidated.
        let mut b = RatingMatrixBuilder::new(3, 4);
        b.rate(UserId(0), ItemId(0), 5.0, 0)
            .rate(UserId(0), ItemId(2), 3.0, 0)
            .rate(UserId(1), ItemId(1), 4.0, 0)
            .rate(UserId(1), ItemId(3), 5.0, 1)
            .rate(UserId(2), ItemId(3), 2.0, 0)
            .rate(UserId(2), ItemId(0), 1.0, 0);
        let next_matrix = b.build();
        let next_raw = RawRatings(&next_matrix);
        let next = sub.rebuild_dirty(&next_raw, &[UserId(1)]).unwrap();

        // Dirty user: fresh segment with the new ordering.
        assert!(!sub.shares_segment_with(&next, UserId(1)));
        let v1 = next.pref_view(1, 1);
        assert_eq!(v1.ids, &[3, 1, 0, 2]);
        assert_eq!(v1.scores, &[5.0, 4.0, 0.0, 0.0]);
        // Clean users: the same allocations, not copies.
        assert!(sub.shares_segment_with(&next, UserId(0)));
        assert!(sub.shares_segment_with(&next, UserId(2)));
        assert!(sub.shares_affinity_with(&next));
        // The old epoch still serves its original view.
        assert_eq!(sub.pref_view(1, 1).ids, &[1, 0, 2, 3]);
        // The rebuilt substrate equals a cold build from the new matrix.
        let cold = Substrate::build(&next_raw, &pop, &items).unwrap();
        for u in 0..3 {
            assert_eq!(next.pref_view(u, 0).ids, cold.pref_view(u, 0).ids);
            assert_eq!(next.pref_view(u, 0).scores, cold.pref_view(u, 0).scores);
        }
    }

    #[test]
    fn rebuild_dirty_starts_with_a_fresh_cache() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let users: Vec<UserId> = pop.universe().to_vec();
        let sub = Substrate::build_with(&raw, &pop, &items, &[], &users, BuildOptions::default())
            .unwrap();
        let _ = sub.segment_handle(&raw, 1).unwrap();
        assert_eq!(sub.lazy_stats().cached_segments, 1);

        let mut b = RatingMatrixBuilder::new(3, 4);
        b.rate(UserId(1), ItemId(3), 5.0, 1);
        let next_matrix = b.build();
        let next_raw = RawRatings(&next_matrix);
        let next = sub.rebuild_dirty(&next_raw, &[UserId(1)]).unwrap();
        // The new epoch must not inherit the old epoch's derivation.
        assert_eq!(next.lazy_stats().cached_segments, 0);
        let h = next.segment_handle(&next_raw, 1).unwrap();
        assert_eq!(h.view(1).ids[0], 3, "post-batch column served");
        // The old epoch's cache still serves the old column.
        let old = sub.segment_handle(&raw, 1).unwrap();
        assert_eq!(old.view(1).ids, &[1, 0, 2, 3]);
    }

    #[test]
    fn rebuild_dirty_skips_uncovered_users() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let sub = Substrate::build_for(&raw, &pop, &items, &[UserId(0), UserId(2)]).unwrap();
        let next = sub.rebuild_dirty(&raw, &[UserId(1), UserId(9)]).unwrap();
        assert!(sub.shares_segment_with(&next, UserId(0)));
        assert!(sub.shares_segment_with(&next, UserId(2)));
        assert!(!sub.shares_segment_with(&next, UserId(1)), "no segment");
    }

    #[test]
    fn build_for_restricts_users() {
        let (matrix, pop, _tl) = world();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = matrix.items().collect();
        let sub = Substrate::build_for(&raw, &pop, &items, &[UserId(2), UserId(0)]).unwrap();
        assert_eq!(sub.users(), &[UserId(0), UserId(2)]);
        assert_eq!(sub.user_index(UserId(2)), Some(1));
        assert_eq!(sub.user_index(UserId(1)), None);
        let g = Group::new(vec![UserId(0), UserId(2)]).unwrap();
        assert!(sub.covers_group(&g));
        let g2 = Group::new(vec![UserId(0), UserId(1)]).unwrap();
        assert!(!sub.covers_group(&g2));
        // Population pair indexing still spans the full universe.
        assert_eq!(sub.population_pair_of(UserId(0), UserId(2)), Some(1));
    }
}
