//! The batch planner: cross-query kernel sharing for overlapping waves.
//!
//! At real scale many concurrent groups *overlap* — the paper's alumni
//! and movie-night scenarios are built on shared members — yet the
//! independent batch path executes every query from scratch: each
//! kernel re-resolves the same members' preference lists its neighbors
//! just resolved. This module analyzes a query wave before execution
//! and shares that per-member work, gated by the kernel-identity
//! invariant (every sharing lever reuses a value that is a
//! deterministic function of the engine state and the query, so a
//! planned wave is bit-identical to an independent one):
//!
//! 1. **Group-level memoization** — queries are deduped by their
//!    canonical [`QueryKey`]; `n` identical queries cost one kernel run
//!    and `n − 1` clones (the in-process analogue of `greca-serve`'s
//!    single-flight result cache).
//! 2. **A shared member-state arena** — [`SharedMemberState`] hoists
//!    per-member list resolution (the cold provider-call + sort, the
//!    warm subset filter pass, the warm segment handle) out of the
//!    per-query scratch into wave-scoped storage that kernels borrow
//!    read-only and extend monotonically, with a per-member once-latch
//!    ([`std::sync::OnceLock`]) so concurrent workers never duplicate a
//!    resolution.
//! 3. **Overlap bucketing** — a union-find over shared members groups
//!    the wave into connected components; the execution order walks one
//!    bucket at a time so a member's freshly resolved lists are hot
//!    when its other groups run. Waves with nothing to share fall back
//!    to the independent path untouched — zero regression.
//!
//! Shared entries are keyed by `(user, itemset identity)` and scoped to
//! **one engine state**: [`run_batch_with`] partitions the wave by
//! engine identity and arenas never cross partitions, while the serving
//! layer scopes one arena per published epoch (reset through the same
//! publish hook that invalidates the result cache).

use crate::greca::TopKResult;
use crate::lists::SortedList;
use crate::query::{
    lock_unpoisoned, run_batch_independent, sum_stats, BatchResult, GroupQuery, QueryError,
    QueryKey,
};
use crate::substrate::SegmentHandle;
use greca_dataset::UserId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Entries a [`SharedMemberState`] holds before it self-flushes
/// wholesale. Wave-scoped arenas never approach this (one entry per
/// distinct member × itemset); the cap bounds the epoch-scoped serving
/// arena the way the engine's affinity cache is bounded.
const SHARED_STATE_CAP: usize = 8_192;

/// Tuning knobs for [`run_batch_with`]. The planner is on by default —
/// [`crate::query::run_batch`] routes through it; pass
/// `enabled: false` to force the independent path (the benchmarks'
/// planner-off baseline).
#[derive(Debug, Clone, Copy)]
pub struct PlanOptions {
    /// Whether the wave is analyzed for sharing at all.
    pub enabled: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions { enabled: true }
    }
}

/// What the planner found in (and did with) one wave.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlanStats {
    /// Queries in the wave.
    pub wave: usize,
    /// Distinct queries after [`QueryKey`] dedup.
    pub unique_queries: usize,
    /// Queries answered by cloning another query's result.
    pub dedup_hits: usize,
    /// Overlap buckets (union-find components over shared members)
    /// among the unique queries.
    pub buckets: usize,
    /// Total member slots across the unique queries.
    pub member_slots: usize,
    /// Member slots whose user appears in ≥ 2 unique queries of the
    /// same engine partition.
    pub shared_member_slots: usize,
    /// Whether the wave actually executed through shared state (false:
    /// nothing to share, the independent path ran).
    pub executed_shared: bool,
    /// Distinct member-list resolutions performed by the wave.
    pub resolved_members: u64,
    /// Member-list requests answered from the shared arena.
    pub reused_members: u64,
    /// List entries (resolved prefix items) those reuse hits would have
    /// re-materialized on the independent path.
    pub reused_prefix_items: u64,
}

impl PlanStats {
    /// Fraction of member slots served by a shared resolution.
    pub fn shared_member_ratio(&self) -> f64 {
        if self.member_slots == 0 {
            0.0
        } else {
            self.shared_member_slots as f64 / self.member_slots as f64
        }
    }
}

/// Identity of one shared member-list resolution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum MemberScope {
    /// The member's full-universe sorted segment (itemset-independent).
    Universe,
    /// The member's list filtered to one itemset, identified the way
    /// [`QueryKey`] identifies itemsets (length + order-independent
    /// fingerprint).
    Itemset { len: usize, fp: u128 },
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MemberKey {
    user: UserId,
    scope: MemberScope,
}

/// One resolved member list, shareable across queries.
#[derive(Debug, Clone)]
pub(crate) enum SharedList {
    /// A warm full-universe segment handle.
    Handle(SegmentHandle),
    /// An owned sorted list (cold materialization or warm subset
    /// filter), stored member-agnostic — consumers re-kind it to their
    /// own group-local member index at view assembly.
    List(Arc<SortedList>),
}

impl SharedList {
    fn len(&self) -> usize {
        match self {
            SharedList::Handle(h) => h.ids().len(),
            SharedList::List(l) => l.len(),
        }
    }
}

type SharedEntry = Result<SharedList, QueryError>;

/// The wave-scoped shared member-state arena.
///
/// Maps `(user, itemset identity)` to that member's resolved sorted
/// list, computed **exactly once** per key — concurrent requesters
/// block on the entry's [`OnceLock`] instead of duplicating the
/// resolution — and then borrowed read-only by every kernel that needs
/// it. Entries are pure derived state (a deterministic function of the
/// engine's substrates and the key), which is what makes monotone
/// extension identity-safe: whichever worker resolves a key, the value
/// is the same.
///
/// **Scope contract:** one arena serves one engine state. The planner
/// partitions waves by engine identity and builds one arena per
/// partition; `greca-serve` scopes one arena per published epoch.
/// Failed resolutions are cached too (they are equally deterministic),
/// so a wave of queries hitting the same broken member pays one
/// provider round-trip, not one per query.
#[derive(Debug, Default)]
pub struct SharedMemberState {
    entries: Mutex<HashMap<MemberKey, Arc<OnceLock<SharedEntry>>>>,
    resolved: AtomicU64,
    reused: AtomicU64,
    reused_prefix_items: AtomicU64,
}

impl SharedMemberState {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        SharedMemberState::default()
    }

    /// Resolve-or-reuse the entry at `key`. `init` runs at most once
    /// per key across all threads; everyone else gets the cached value.
    fn resolve(&self, key: MemberKey, init: impl FnOnce() -> SharedEntry) -> SharedEntry {
        let cell = {
            let mut map = lock_unpoisoned(&self.entries);
            if map.len() >= SHARED_STATE_CAP && !map.contains_key(&key) {
                // Wholesale self-flush, like the engine's affinity
                // cache: entries are derived state, dropping them only
                // costs re-resolution.
                map.clear();
            }
            Arc::clone(map.entry(key).or_insert_with(|| Arc::new(OnceLock::new())))
        };
        let mut initialized_here = false;
        let entry = cell.get_or_init(|| {
            initialized_here = true;
            init()
        });
        if initialized_here {
            self.resolved.fetch_add(1, Ordering::Relaxed);
        } else {
            self.reused.fetch_add(1, Ordering::Relaxed);
            if let Ok(list) = entry {
                self.reused_prefix_items
                    .fetch_add(list.len() as u64, Ordering::Relaxed);
            }
        }
        entry.clone()
    }

    /// Resolve-or-reuse a member's full-universe segment handle.
    pub(crate) fn resolve_handle(
        &self,
        user: UserId,
        init: impl FnOnce() -> Result<SegmentHandle, QueryError>,
    ) -> Result<SegmentHandle, QueryError> {
        let key = MemberKey {
            user,
            scope: MemberScope::Universe,
        };
        match self.resolve(key, || init().map(SharedList::Handle))? {
            SharedList::Handle(h) => Ok(h),
            SharedList::List(_) => unreachable!("universe scope only stores handles"),
        }
    }

    /// Resolve-or-reuse a member's sorted list over one itemset
    /// (identified by length + fingerprint, like [`QueryKey`]).
    pub(crate) fn resolve_list(
        &self,
        user: UserId,
        items_len: usize,
        items_fp: u128,
        init: impl FnOnce() -> Result<Arc<SortedList>, QueryError>,
    ) -> Result<Arc<SortedList>, QueryError> {
        let key = MemberKey {
            user,
            scope: MemberScope::Itemset {
                len: items_len,
                fp: items_fp,
            },
        };
        match self.resolve(key, || init().map(SharedList::List))? {
            SharedList::List(l) => Ok(l),
            SharedList::Handle(_) => unreachable!("itemset scope only stores lists"),
        }
    }

    /// Distinct member-list resolutions performed so far.
    pub fn resolved_members(&self) -> u64 {
        self.resolved.load(Ordering::Relaxed)
    }

    /// Requests answered from the arena instead of re-resolving.
    pub fn reused_members(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// List entries those reuse hits would have re-materialized.
    pub fn reused_prefix_items(&self) -> u64 {
        self.reused_prefix_items.load(Ordering::Relaxed)
    }

    /// Entries currently held.
    pub fn entries(&self) -> usize {
        lock_unpoisoned(&self.entries).len()
    }

    /// Approximate bytes retained by owned shared lists (handles are
    /// substrate-owned and not counted).
    pub fn memory_bytes(&self) -> usize {
        lock_unpoisoned(&self.entries)
            .values()
            .filter_map(|cell| cell.get())
            .filter_map(|entry| entry.as_ref().ok())
            .map(|list| match list {
                SharedList::Handle(_) => 0,
                // One u32 id + one f64 score per entry.
                SharedList::List(l) => l.len() * 12,
            })
            .sum()
    }
}

/// The analyzed shape of one wave, before execution.
struct WavePlan {
    /// Engine-identity partition of each query.
    partition_of: Vec<usize>,
    /// Number of partitions.
    partitions: usize,
    /// `Some(rep)` when the query at this index is a [`QueryKey`]
    /// duplicate of the (unique) query at input index `rep`.
    dup_of: Vec<Option<usize>>,
    /// Unique query input indices in execution order: grouped by
    /// partition, then by overlap bucket, then input order.
    order: Vec<usize>,
    stats: PlanStats,
}

impl WavePlan {
    /// Whether executing through shared state can save anything.
    fn worth_sharing(&self) -> bool {
        self.stats.dedup_hits > 0 || self.stats.shared_member_slots > 0
    }
}

/// Analyze a wave: partition by engine, dedupe by [`QueryKey`], bucket
/// unique queries by member overlap.
fn analyze(queries: &[GroupQuery<'_>]) -> WavePlan {
    // ── Engine partitions ────────────────────────────────────────────
    let mut partition_ids: HashMap<usize, usize> = HashMap::new();
    let partition_of: Vec<usize> = queries
        .iter()
        .map(|q| {
            let addr = q.engine_address();
            let next = partition_ids.len();
            *partition_ids.entry(addr).or_insert(next)
        })
        .collect();
    let partitions = partition_ids.len();

    // ── QueryKey dedup within each partition ─────────────────────────
    let mut reps: HashMap<(usize, QueryKey), usize> = HashMap::new();
    let mut dup_of: Vec<Option<usize>> = Vec::with_capacity(queries.len());
    let mut unique: Vec<usize> = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let key = (partition_of[i], q.cache_key());
        match reps.get(&key) {
            Some(&rep) => dup_of.push(Some(rep)),
            None => {
                reps.insert(key, i);
                dup_of.push(None);
                unique.push(i);
            }
        }
    }
    let dedup_hits = queries.len() - unique.len();

    // ── Member overlap among unique queries, per partition ───────────
    let mut member_count: HashMap<(usize, UserId), usize> = HashMap::new();
    let mut member_slots = 0usize;
    for &i in &unique {
        for &u in queries[i].group_members() {
            member_slots += 1;
            *member_count.entry((partition_of[i], u)).or_insert(0) += 1;
        }
    }
    let mut shared_member_slots = 0usize;
    for &i in &unique {
        for &u in queries[i].group_members() {
            if member_count[&(partition_of[i], u)] >= 2 {
                shared_member_slots += 1;
            }
        }
    }

    // ── Union-find buckets over shared members ───────────────────────
    // `parent` is indexed by position within `unique`.
    let mut parent: Vec<usize> = (0..unique.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut first_holder: HashMap<(usize, UserId), usize> = HashMap::new();
    for (pos, &i) in unique.iter().enumerate() {
        for &u in queries[i].group_members() {
            let key = (partition_of[i], u);
            if member_count[&key] < 2 {
                continue;
            }
            match first_holder.get(&key) {
                Some(&other) => {
                    let (a, b) = (find(&mut parent, pos), find(&mut parent, other));
                    if a != b {
                        parent[a.max(b)] = a.min(b);
                    }
                }
                None => {
                    first_holder.insert(key, pos);
                }
            }
        }
    }
    let roots: Vec<usize> = (0..unique.len())
        .map(|pos| find(&mut parent, pos))
        .collect();
    let buckets = {
        let mut distinct: Vec<usize> = roots.clone();
        distinct.sort_unstable();
        distinct.dedup();
        distinct.len()
    };

    // ── Execution order: partition, then bucket, then input order ────
    // Bucket-mates run back-to-back, so a member's freshly resolved
    // lists are reused while still hot.
    let mut order: Vec<usize> = unique.clone();
    order.sort_by_key(|&i| {
        let pos = unique.binary_search(&i).expect("i came from unique");
        (partition_of[i], roots[pos], i)
    });

    WavePlan {
        partition_of,
        partitions,
        dup_of,
        order,
        stats: PlanStats {
            wave: queries.len(),
            unique_queries: unique.len(),
            dedup_hits,
            buckets,
            member_slots,
            shared_member_slots,
            executed_shared: false,
            resolved_members: 0,
            reused_members: 0,
            reused_prefix_items: 0,
        },
    }
}

/// Execute a wave through the batch planner (see the module docs).
///
/// With `enabled: false`, or when analysis finds nothing to share (no
/// duplicate queries, no member in ≥ 2 unique groups of one engine),
/// the wave runs on the independent path — results, statistics and
/// per-query errors are exactly [`crate::query::run_batch`]'s
/// pre-planner behavior. Otherwise unique queries execute through a
/// per-partition [`SharedMemberState`] and duplicates are answered by
/// cloning their representative's result; both levers are
/// bit-identical to independent execution, which
/// `crates/core/tests/plan_batch.rs` holds against the kernel-identity
/// oracle's worlds.
pub fn run_batch_with(queries: &[GroupQuery<'_>], opts: &PlanOptions) -> BatchResult {
    // One span for the whole wave. Single-worker execution attributes
    // prepare/kernel phases here too; scoped worker threads run with
    // no active span (their phase timers no-op), so a parallel wave's
    // span records the wave's wall clock without double-counting.
    let batch_span = crate::obs::span(crate::obs::next_trace_id(), crate::obs::SpanKind::Batch);
    let result = run_batch_inner(queries, opts);
    if batch_span.active() {
        crate::obs::note_ok(true);
    }
    drop(batch_span);
    result
}

fn run_batch_inner(queries: &[GroupQuery<'_>], opts: &PlanOptions) -> BatchResult {
    if !opts.enabled || queries.len() < 2 {
        let results = run_batch_independent(queries);
        return BatchResult {
            stats: sum_stats(&results),
            results,
            plan: None,
        };
    }
    let mut plan = analyze(queries);
    if !plan.worth_sharing() {
        let results = run_batch_independent(queries);
        return BatchResult {
            stats: sum_stats(&results),
            results,
            plan: Some(plan.stats),
        };
    }

    let states: Vec<SharedMemberState> = (0..plan.partitions)
        .map(|_| SharedMemberState::new())
        .collect();
    let mut slots: Vec<Option<Result<TopKResult, QueryError>>> = Vec::new();
    slots.resize_with(queries.len(), || None);

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(plan.order.len().max(1));
    if workers <= 1 {
        for &i in &plan.order {
            slots[i] = Some(queries[i].run_shared(&states[plan.partition_of[i]]));
        }
    } else {
        let order = &plan.order;
        let partition_of = &plan.partition_of;
        let states = &states;
        let next = AtomicUsize::new(0);
        let collected: Vec<Vec<(usize, Result<TopKResult, QueryError>)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut out = Vec::new();
                            loop {
                                let j = next.fetch_add(1, Ordering::Relaxed);
                                let Some(&i) = order.get(j) else { break };
                                out.push((i, queries[i].run_shared(&states[partition_of[i]])));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("planned batch worker panicked"))
                    .collect()
            });
        for (i, r) in collected.into_iter().flatten() {
            slots[i] = Some(r);
        }
    }

    // Duplicates: clone the representative's result — bit-identical to
    // re-running it, including per-query access statistics, so the
    // summed batch stats match the independent path exactly.
    for i in 0..queries.len() {
        if let Some(rep) = plan.dup_of[i] {
            slots[i] = Some(slots[rep].clone().expect("representative executed"));
        }
    }
    let results: Vec<Result<TopKResult, QueryError>> = slots
        .into_iter()
        .map(|r| r.expect("every query index visited"))
        .collect();

    plan.stats.executed_shared = true;
    for state in &states {
        plan.stats.resolved_members += state.resolved_members();
        plan.stats.reused_members += state.reused_members();
        plan.stats.reused_prefix_items += state.reused_prefix_items();
    }
    BatchResult {
        stats: sum_stats(&results),
        results,
        plan: Some(plan.stats),
    }
}
