//! Property tests for the WAL codec and segment scan: **any record
//! sequence round-trips bit-exactly, and any single corruption —
//! a flipped bit or a truncation anywhere in the file — degrades
//! recovery to a clean committed prefix, never a panic and never a
//! fabricated record.**
//!
//! Three properties:
//!
//! 1. *Round-trip*: `encode_record`/`encode_frame` followed by a
//!    sequential `decode_frame_at` scan reproduces the exact record
//!    sequence, and every frame's checksum verifies.
//! 2. *Bit-flip*: flipping any single bit of an on-disk segment makes
//!    [`Wal::recover`] return exactly the records strictly before the
//!    frame containing the flip (CRC-32 catches every single-bit
//!    error), truncating the rest as a torn tail.
//! 3. *Truncate-anywhere*: cutting the segment at any byte offset
//!    recovers exactly the frames wholly inside the cut, reporting a
//!    torn tail iff the cut lands mid-frame.

use greca_core::wal::{crc32, decode_frame_at, decode_record, encode_frame, encode_record};
use greca_core::{Wal, WalOptions, WalRecord};
use greca_dataset::{ItemId, Rating, UserId};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const FRAME_HEADER: usize = greca_core::wal::FRAME_HEADER;

/// A scratch directory unique to this process *and* proptest case, so
/// re-runs never see a previous case's segments.
fn scratch_dir(tag: &str) -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("greca-walprop-{tag}-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn rating_strategy() -> impl Strategy<Value = Rating> {
    (0u32..64, 0u32..64, 0.0f64..5.0, -100i64..100).prop_map(|(u, i, v, ts)| Rating {
        user: UserId(u),
        item: ItemId(i),
        value: v as f32,
        ts,
    })
}

/// One WAL record, batches three times as likely as publishes.
fn record_strategy() -> impl Strategy<Value = WalRecord> {
    (
        0u8..4,
        any::<u64>(),
        (any::<bool>(), any::<u64>()),
        proptest::collection::vec(rating_strategy(), 0..5),
        proptest::collection::vec((0u32..64, 0u32..64), 0..4),
        any::<u64>(),
    )
        .prop_map(|(kind, id, (keyed, key), upserts, retractions, through)| {
            if kind < 3 {
                WalRecord::Batch {
                    batch_id: id,
                    client_key: keyed.then_some(key),
                    upserts,
                    retractions: retractions
                        .into_iter()
                        .map(|(u, i)| (UserId(u), ItemId(i)))
                        .collect(),
                }
            } else {
                WalRecord::Publish {
                    epoch: id,
                    through_batch: through,
                }
            }
        })
}

/// Write `records` into a fresh single-segment WAL and return its
/// directory, the segment's bytes, and each frame's size in order.
fn segment_of(records: &[WalRecord], tag: &str) -> (PathBuf, Vec<u8>, Vec<usize>) {
    let dir = scratch_dir(tag);
    let mut wal = Wal::create(&dir, WalOptions::default()).unwrap();
    let mut frame_sizes = Vec::with_capacity(records.len());
    for record in records {
        wal.append(record).unwrap();
        frame_sizes.push(FRAME_HEADER + encode_record(record).len());
    }
    wal.sync().unwrap();
    let path = dir.join("wal-000000.log");
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(bytes.len(), frame_sizes.iter().sum::<usize>());
    (dir, bytes, frame_sizes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Codec round-trip: record → payload → frame → scan → record.
    #[test]
    fn records_round_trip_through_frames(
        records in proptest::collection::vec(record_strategy(), 0..12),
    ) {
        let mut buf = Vec::new();
        for record in &records {
            let payload = encode_record(record);
            let decoded = decode_record(&payload);
            prop_assert_eq!(decoded.as_ref(), Some(record));
            let frame = encode_frame(&payload);
            prop_assert_eq!(frame.len(), FRAME_HEADER + payload.len());
            // The header is `[len][crc32(payload)]`, little-endian.
            let sum = u32::from_le_bytes(frame[4..8].try_into().unwrap());
            prop_assert_eq!(sum, crc32(&payload));
            buf.extend_from_slice(&frame);
        }
        let mut offset = 0;
        let mut decoded = Vec::new();
        while let Some((record, next)) = decode_frame_at(&buf, offset) {
            decoded.push(record);
            offset = next;
        }
        prop_assert_eq!(offset, buf.len(), "scan must consume every byte");
        prop_assert_eq!(decoded, records);
    }

    /// Any single flipped bit truncates recovery to the frames strictly
    /// before the corrupted one — no panic, no invented records.
    #[test]
    fn single_bit_flip_recovers_the_prefix(
        records in proptest::collection::vec(record_strategy(), 1..8),
        flip in any::<u64>(),
    ) {
        let (dir, bytes, frame_sizes) = segment_of(&records, "flip");
        let flip = flip as usize % (bytes.len() * 8);
        let (byte, bit) = (flip / 8, flip % 8);
        let mut corrupt = bytes.clone();
        corrupt[byte] ^= 1 << bit;
        std::fs::write(dir.join("wal-000000.log"), &corrupt).unwrap();

        // Which frame holds the flipped byte, and where does it start?
        let mut boundary = 0;
        let mut hit = frame_sizes.len();
        for (i, size) in frame_sizes.iter().enumerate() {
            if byte < boundary + size {
                hit = i;
                break;
            }
            boundary += size;
        }
        prop_assert!(hit < frame_sizes.len());

        let (_wal, recovered, summary) = Wal::recover(&dir, WalOptions::default()).unwrap();
        prop_assert_eq!(&recovered[..], &records[..hit], "flip in frame {}", hit);
        prop_assert!(summary.torn_tail, "a corrupt frame is a torn tail");
        prop_assert_eq!(summary.truncated_bytes, (bytes.len() - boundary) as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncating the segment at any offset recovers exactly the frames
    /// wholly within the cut; a mid-frame cut is a torn tail.
    #[test]
    fn truncation_anywhere_recovers_whole_frames(
        records in proptest::collection::vec(record_strategy(), 1..8),
        cut in any::<u64>(),
    ) {
        let (dir, bytes, frame_sizes) = segment_of(&records, "cut");
        let cut = cut as usize % (bytes.len() + 1); // 0 ..= len inclusive
        std::fs::write(dir.join("wal-000000.log"), &bytes[..cut]).unwrap();

        // Frames wholly inside the cut, and the byte where they end.
        let mut whole = 0;
        let mut boundary = 0;
        for size in &frame_sizes {
            if boundary + size > cut {
                break;
            }
            boundary += size;
            whole += 1;
        }

        let (_wal, recovered, summary) = Wal::recover(&dir, WalOptions::default()).unwrap();
        prop_assert_eq!(&recovered[..], &records[..whole]);
        prop_assert_eq!(summary.torn_tail, cut > boundary, "cut {} boundary {}", cut, boundary);
        prop_assert_eq!(summary.truncated_bytes, (cut - boundary) as u64);
        prop_assert_eq!(summary.records, whole);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// After a torn-tail truncation the log must accept appends again and
/// the new records must land after the surviving prefix (deterministic
/// companion to the properties above).
#[test]
fn recovery_truncates_then_appends_cleanly() {
    let records: Vec<WalRecord> = (0..4)
        .map(|i| WalRecord::Batch {
            batch_id: i + 1,
            client_key: Some(100 + i),
            upserts: vec![Rating {
                user: UserId(i as u32),
                item: ItemId(i as u32),
                value: 1.5,
                ts: 0,
            }],
            retractions: vec![],
        })
        .collect();
    let (dir, bytes, frame_sizes) = segment_of(&records, "reappend");
    // Cut halfway through the last frame.
    let keep = bytes.len() - frame_sizes[3] / 2;
    std::fs::write(dir.join("wal-000000.log"), &bytes[..keep]).unwrap();

    let (mut wal, recovered, summary) = Wal::recover(&dir, WalOptions::default()).unwrap();
    assert_eq!(recovered, records[..3]);
    assert!(summary.torn_tail);

    let publish = WalRecord::Publish {
        epoch: 1,
        through_batch: 3,
    };
    wal.append(&publish).unwrap();
    wal.sync().unwrap();
    drop(wal);

    let (_wal, after, summary) = Wal::recover(&dir, WalOptions::default()).unwrap();
    let mut expected = records[..3].to_vec();
    expected.push(publish);
    assert_eq!(after, expected);
    assert!(!summary.torn_tail);
    let _ = std::fs::remove_dir_all(&dir);
}
