//! Property tests for the live-ingestion layer: **for any interleaving
//! of ingest/retract batches, a pinned-epoch warm query is bit-identical
//! to cold materialization from that epoch's ratings.**
//!
//! Each generated instance streams a random sequence of delta batches
//! into a [`LiveEngine`] (raw-rating or user-CF model). After every
//! publish the test:
//!
//! 1. independently replays the surviving rating log into a fresh
//!    matrix (validating `RatingMatrix::apply_deltas` against a from-
//!    scratch build),
//! 2. fits a *cold* engine on that matrix (a full refit — no dirty-set
//!    shortcuts), and
//! 3. asserts the pinned warm query equals the cold query bit-for-bit:
//!    same itemsets, same bounds, same access statistics, same exact
//!    scores — for the zero-copy full itemset and the filtered subset
//!    path.
//!
//! Pins taken at earlier epochs are re-run at the end, after every
//! subsequent swap, and must still return their original results —
//! epoch immutability under arbitrary later ingestion.

use greca_affinity::{AffinityMode, PopulationAffinity, TableAffinitySource};
use greca_cf::{CfConfig, PreferenceProvider, RawRatings, UserCfModel};
use greca_consensus::ConsensusFunction;
use greca_core::{Algorithm, GrecaEngine, LiveEngine, LiveModel, TaConfig};
use greca_dataset::{
    Granularity, Group, ItemId, Rating, RatingMatrix, RatingMatrixBuilder, Timeline, UserId,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// One staged event: upsert when `retract` is false.
#[derive(Debug, Clone, Copy)]
struct Event {
    user: usize,
    item: usize,
    value: f64,
    retract: bool,
}

#[derive(Debug, Clone)]
struct LiveInstance {
    n: usize,
    m: usize,
    periods: usize,
    static_raw: Vec<f64>,
    periodic_raw: Vec<Vec<f64>>,
    /// Initial log: one optional rating per grid cell.
    initial: Vec<Option<f64>>,
    /// The interleaving under test.
    batches: Vec<Vec<Event>>,
    usercf: bool,
    mode_sel: u8,
    consensus_sel: u8,
    k: usize,
    group_size: usize,
}

fn num_pairs(n: usize) -> usize {
    n * (n - 1) / 2
}

fn instance_strategy() -> impl Strategy<Value = LiveInstance> {
    (2usize..=5, 3usize..=8, 0usize..=2).prop_flat_map(|(n, m, periods)| {
        let static_raw = proptest::collection::vec(0.0f64..3.0, num_pairs(n));
        let periodic_raw = proptest::collection::vec(
            proptest::collection::vec(0.0f64..4.0, num_pairs(n)),
            periods,
        );
        // `(keep, value)` per grid cell — the vendored proptest has no
        // `option::of`.
        let initial =
            proptest::collection::vec((any::<bool>(), 0.5f64..5.0), n * m).prop_map(|cells| {
                cells
                    .into_iter()
                    .map(|(keep, v)| keep.then_some(v))
                    .collect::<Vec<Option<f64>>>()
            });
        let event =
            (0..n, 0..m, 0.5f64..5.0, any::<bool>()).prop_map(|(user, item, value, retract)| {
                Event {
                    user,
                    item,
                    value,
                    retract,
                }
            });
        let batches =
            proptest::collection::vec(proptest::collection::vec(event, 1..5usize), 1..5usize);
        (
            Just(n),
            Just(m),
            Just(periods),
            static_raw,
            periodic_raw,
            initial,
            batches,
            any::<bool>(),
            (0u8..4, 0u8..5),
            1usize..=4,
            2usize..=3,
        )
            .prop_map(
                |(
                    n,
                    m,
                    periods,
                    static_raw,
                    periodic_raw,
                    initial,
                    batches,
                    usercf,
                    (mode_sel, consensus_sel),
                    k,
                    group_size,
                )| LiveInstance {
                    n,
                    m,
                    periods,
                    static_raw,
                    periodic_raw,
                    initial,
                    batches,
                    usercf,
                    mode_sel,
                    consensus_sel,
                    k: k.min(m),
                    group_size: group_size.min(n),
                },
            )
    })
}

fn mode_of(sel: u8, periods: usize) -> AffinityMode {
    let mode = match sel {
        0 => AffinityMode::None,
        1 => AffinityMode::StaticOnly,
        2 => AffinityMode::Discrete,
        _ => AffinityMode::continuous(),
    };
    // A temporal mode needs at least one period to pass validation.
    if periods == 0 && mode.is_temporal() {
        AffinityMode::StaticOnly
    } else {
        mode
    }
}

fn consensus_of(sel: u8) -> ConsensusFunction {
    match sel {
        0 => ConsensusFunction::average_preference(),
        1 => ConsensusFunction::least_misery(),
        2 => ConsensusFunction::pairwise_disagreement(0.8),
        3 => ConsensusFunction::pairwise_disagreement(0.2),
        _ => ConsensusFunction::variance_disagreement(0.5),
    }
}

fn population_of(inst: &LiveInstance) -> (Vec<UserId>, PopulationAffinity) {
    let users: Vec<UserId> = (0..inst.n as u32).map(UserId).collect();
    let mut src = TableAffinitySource::new();
    let mut pair = 0;
    for i in 0..inst.n {
        for j in (i + 1)..inst.n {
            src.set_static(users[i], users[j], inst.static_raw[pair]);
            pair += 1;
        }
    }
    let pop = if inst.periods == 0 {
        PopulationAffinity::new_static_only(&src, &users)
    } else {
        let tl =
            Timeline::discretize(0, (inst.periods as i64) * 100, Granularity::Custom(100)).unwrap();
        for (p, pdata) in inst.periodic_raw.iter().enumerate() {
            let start = tl.periods()[p].start;
            let mut pr = 0;
            for i in 0..inst.n {
                for j in (i + 1)..inst.n {
                    src.set_periodic(users[i], users[j], start, pdata[pr]);
                    pr += 1;
                }
            }
        }
        PopulationAffinity::build(&src, &users, &tl)
    };
    (users, pop)
}

/// A from-scratch matrix build of the surviving log — deliberately NOT
/// `apply_deltas`, so the incremental path is checked against an
/// independent construction.
fn matrix_of(log: &BTreeMap<(u32, u32), f32>, n: usize, m: usize) -> RatingMatrix {
    let mut b = RatingMatrixBuilder::new(n, m);
    for (&(u, i), &v) in log {
        b.rate(UserId(u), ItemId(i), v, 0);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pinned_epoch_equals_cold_materialization(inst in instance_strategy()) {
        let (users, pop) = population_of(&inst);
        let items: Vec<ItemId> = (0..inst.m as u32).map(ItemId).collect();
        let subset: Vec<ItemId> = items.iter().copied().step_by(2).collect();
        let group = Group::new(users[..inst.group_size].to_vec()).unwrap();
        let p_idx = inst.periods.saturating_sub(1);
        let mode = mode_of(inst.mode_sel, inst.periods);
        let consensus = consensus_of(inst.consensus_sel);

        // The independently-maintained rating log.
        let mut log: BTreeMap<(u32, u32), f32> = BTreeMap::new();
        for (cell, v) in inst.initial.iter().enumerate() {
            if let Some(v) = v {
                log.insert(((cell / inst.m) as u32, (cell % inst.m) as u32), *v as f32);
            }
        }

        let (model, cfg) = if inst.usercf {
            let cfg = CfConfig::default();
            (LiveModel::UserCf(cfg), Some(cfg))
        } else {
            (LiveModel::Raw, None)
        };
        let initial = matrix_of(&log, inst.n, inst.m);
        let live = LiveEngine::new(&pop, model, &initial, &items).unwrap();

        let mut history = Vec::new();
        for batch in &inst.batches {
            for e in batch {
                if e.retract {
                    live.stage_retractions(&[(UserId(e.user as u32), ItemId(e.item as u32))])
                        .unwrap();
                    log.remove(&(e.user as u32, e.item as u32));
                } else {
                    live.stage(&[Rating {
                        user: UserId(e.user as u32),
                        item: ItemId(e.item as u32),
                        value: e.value as f32,
                        ts: 0,
                    }]).unwrap();
                    log.insert((e.user as u32, e.item as u32), e.value as f32);
                }
            }
            live.publish().unwrap();
            let pin = live.pin();

            // The epoch's matrix equals an independent replay of the log.
            let expected = matrix_of(&log, inst.n, inst.m);
            for &u in &users {
                prop_assert_eq!(pin.matrix().user_ratings(u), expected.user_ratings(u));
            }
            prop_assert_eq!(pin.matrix().num_ratings(), expected.num_ratings());

            // Cold reference: a full refit on the epoch's ratings — no
            // dirty-set shortcuts, no shared segments.
            let provider: Box<dyn PreferenceProvider + Sync> = match cfg {
                None => Box::new(RawRatings(&expected)),
                Some(cfg) => Box::new(UserCfModel::fit(&expected, cfg)),
            };
            let cold_engine = GrecaEngine::new(provider.as_ref(), &pop);

            for itemset in [&items, &subset] {
                let warm = pin
                    .engine()
                    .query(&group)
                    .items(itemset)
                    .period(p_idx)
                    .affinity(mode)
                    .consensus(consensus)
                    .top(inst.k)
                    .prepare()
                    .unwrap();
                let cold = cold_engine
                    .query(&group)
                    .items(itemset)
                    .period(p_idx)
                    .affinity(mode)
                    .consensus(consensus)
                    .top(inst.k)
                    .prepare()
                    .unwrap();
                prop_assert!(warm.is_warm(), "substrate must cover the query");
                prop_assert!(!cold.is_warm());
                prop_assert_eq!(cold.run(), warm.run());
                prop_assert_eq!(
                    cold.run_algorithm(Algorithm::Ta(TaConfig::default())),
                    warm.run_algorithm(Algorithm::Ta(TaConfig::default()))
                );
                prop_assert_eq!(
                    cold.run_algorithm(Algorithm::Naive),
                    warm.run_algorithm(Algorithm::Naive)
                );
                prop_assert_eq!(cold.exact_scores(), warm.exact_scores());
            }

            let reference = pin
                .engine()
                .query(&group)
                .items(&items)
                .period(p_idx)
                .affinity(mode)
                .consensus(consensus)
                .top(inst.k)
                .run()
                .unwrap();
            history.push((pin, reference));
        }

        // Every pinned epoch must still serve its original answer after
        // all subsequent swaps (epochs are immutable snapshots).
        for (epoch_no, (pin, reference)) in history.iter().enumerate() {
            let again = pin
                .engine()
                .query(&group)
                .items(&items)
                .period(p_idx)
                .affinity(mode)
                .consensus(consensus)
                .top(inst.k)
                .run()
                .unwrap();
            prop_assert_eq!(
                &again,
                reference,
                "epoch {} drifted after later ingestion",
                epoch_no + 1
            );
        }
    }
}
