//! Property tests: [`QueryKey`] canonicalization.
//!
//! The key is the identity every sharing layer trusts — the serve
//! result cache, the batch planner's group-level dedup, the shared
//! member arena's itemset scoping. Two properties pin it down:
//!
//! * **Canonical**: member-order and itemset-order permutations of one
//!   query produce *equal* keys (groups are canonical by construction,
//!   itemsets through the order-independent fingerprint).
//! * **Separating**: changing any single parameter — k, affinity mode,
//!   consensus, period, layout, rpref normalization, algorithm, one
//!   itemset element, one member — produces a *distinct* key.
//!
//! [`QueryKey`]: greca_core::QueryKey

use greca_affinity::{AffinityMode, PopulationAffinity, TableAffinitySource};
use greca_cf::RawRatings;
use greca_consensus::ConsensusFunction;
use greca_core::{Algorithm, CheckInterval, GrecaConfig, GrecaEngine, GroupQuery, ListLayout};
use greca_dataset::{Granularity, Group, ItemId, RatingMatrixBuilder, Timeline, UserId};
use proptest::prelude::*;

const UNIVERSE_USERS: u32 = 8;
const UNIVERSE_ITEMS: u32 = 40;
const PERIODS: usize = 3;

/// One query's full parameter set, as raw generatable values.
#[derive(Debug, Clone)]
struct Params {
    members: Vec<u32>,
    items: Vec<u32>,
    period: usize,
    mode_sel: u8,
    consensus_sel: u8,
    layout_single: bool,
    normalize: bool,
    k: usize,
    algorithm_sel: u8,
    /// Seeds for the two permutations under test.
    member_perm: u64,
    item_perm: u64,
}

fn params_strategy() -> impl Strategy<Value = Params> {
    (
        proptest::collection::vec(0u32..UNIVERSE_USERS, 2usize..6),
        proptest::collection::vec(0u32..UNIVERSE_ITEMS, 1usize..13),
        0usize..PERIODS,
        0u8..4,
        0u8..5,
        any::<bool>(),
        any::<bool>(),
        1usize..=10,
        0u8..3,
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(
                members,
                items,
                period,
                mode_sel,
                consensus_sel,
                layout_single,
                normalize,
                k,
                algorithm_sel,
                member_perm,
                item_perm,
            )| Params {
                // Distinct, sorted member/item id sets (groups reject
                // duplicates; the itemset fingerprint is multiset-
                // sensitive, so duplicates would be a *different* set).
                members: {
                    let mut m = members;
                    m.sort_unstable();
                    m.dedup();
                    let mut next = 0;
                    while m.len() < 2 {
                        if !m.contains(&next) {
                            m.push(next);
                        }
                        next += 1;
                    }
                    m.sort_unstable();
                    m
                },
                items: {
                    let mut i = items;
                    i.sort_unstable();
                    i.dedup();
                    i
                },
                period,
                mode_sel,
                consensus_sel,
                layout_single,
                normalize,
                k,
                algorithm_sel,
                member_perm,
                item_perm,
            },
        )
}

/// Deterministic Fisher–Yates from a SplitMix64 stream — proptest
/// shrinks the seed, the permutation follows.
fn permute<T: Copy>(xs: &[T], mut seed: u64) -> Vec<T> {
    let mut out = xs.to_vec();
    for i in (1..out.len()).rev() {
        seed = seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        out.swap(i, (seed % (i as u64 + 1)) as usize);
    }
    out
}

fn mode_of(sel: u8) -> AffinityMode {
    match sel {
        0 => AffinityMode::None,
        1 => AffinityMode::StaticOnly,
        2 => AffinityMode::Discrete,
        _ => AffinityMode::continuous(),
    }
}

fn consensus_of(sel: u8) -> ConsensusFunction {
    match sel {
        0 => ConsensusFunction::average_preference(),
        1 => ConsensusFunction::least_misery(),
        2 => ConsensusFunction::pairwise_disagreement(0.8),
        3 => ConsensusFunction::pairwise_disagreement(0.2),
        _ => ConsensusFunction::variance_disagreement(0.5),
    }
}

fn algorithm_of(sel: u8) -> Algorithm {
    match sel {
        0 => Algorithm::Greca(GrecaConfig::top(10)),
        1 => Algorithm::Ta(greca_core::TaConfig::default()),
        _ => Algorithm::Naive,
    }
}

/// The fixed world the keys are taken against (key contents don't
/// depend on ratings or affinity *values*, only on the parameter set
/// and the period resolution, but a real engine keeps the API honest).
fn world() -> (greca_dataset::RatingMatrix, PopulationAffinity) {
    let mut b = RatingMatrixBuilder::new(UNIVERSE_USERS as usize, UNIVERSE_ITEMS as usize);
    b.rate(UserId(0), ItemId(0), 4.0, 0);
    let matrix = b.build();
    let mut src = TableAffinitySource::new();
    src.set_static(UserId(0), UserId(1), 0.5);
    let tl = Timeline::discretize(0, PERIODS as i64 * 50, Granularity::Custom(50)).unwrap();
    let users: Vec<UserId> = (0..UNIVERSE_USERS).map(UserId).collect();
    let pop = PopulationAffinity::build(&src, &users, &tl);
    (matrix, pop)
}

fn build_query<'q>(
    engine: &'q GrecaEngine<'q>,
    group: &'q Group,
    items: &'q [ItemId],
    p: &Params,
) -> GroupQuery<'q> {
    engine
        .query(group)
        .items(items)
        .period(p.period)
        .affinity(mode_of(p.mode_sel))
        .layout(if p.layout_single {
            ListLayout::Single
        } else {
            ListLayout::Decomposed
        })
        .consensus(consensus_of(p.consensus_sel))
        .normalize_rpref(p.normalize)
        .top(p.k)
        .algorithm(algorithm_of(p.algorithm_sel))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Member-order and itemset-order permutations share one key.
    #[test]
    fn key_is_invariant_under_member_and_itemset_permutation(p in params_strategy()) {
        let (matrix, pop) = world();
        let raw = RawRatings(&matrix);
        let engine = GrecaEngine::new(&raw, &pop);

        let members: Vec<UserId> = p.members.iter().map(|&u| UserId(u)).collect();
        let items: Vec<ItemId> = p.items.iter().map(|&i| ItemId(i)).collect();
        let group = Group::new(members.clone()).unwrap();
        let base = build_query(&engine, &group, &items, &p).cache_key();

        let shuffled_members = permute(&members, p.member_perm);
        let shuffled_group = Group::new(shuffled_members).unwrap();
        let shuffled_items = permute(&items, p.item_perm);

        prop_assert_eq!(
            &base,
            &build_query(&engine, &shuffled_group, &items, &p).cache_key()
        );
        prop_assert_eq!(
            &base,
            &build_query(&engine, &group, &shuffled_items, &p).cache_key()
        );
        prop_assert_eq!(
            &base,
            &build_query(&engine, &shuffled_group, &shuffled_items, &p).cache_key()
        );
    }

    /// Any single differing parameter separates keys.
    #[test]
    fn key_separates_every_single_parameter_change(p in params_strategy()) {
        let (matrix, pop) = world();
        let raw = RawRatings(&matrix);
        let engine = GrecaEngine::new(&raw, &pop);

        let members: Vec<UserId> = p.members.iter().map(|&u| UserId(u)).collect();
        let items: Vec<ItemId> = p.items.iter().map(|&i| ItemId(i)).collect();
        let group = Group::new(members.clone()).unwrap();
        let base = build_query(&engine, &group, &items, &p).cache_key();

        // k.
        let mut q = p.clone();
        q.k += 1;
        prop_assert_ne!(&base, &build_query(&engine, &group, &items, &q).cache_key());

        // Period.
        let mut q = p.clone();
        q.period = (p.period + 1) % PERIODS;
        prop_assert_ne!(&base, &build_query(&engine, &group, &items, &q).cache_key());

        // Affinity mode.
        let mut q = p.clone();
        q.mode_sel = (p.mode_sel + 1) % 4;
        prop_assert_ne!(&base, &build_query(&engine, &group, &items, &q).cache_key());

        // Consensus.
        let mut q = p.clone();
        q.consensus_sel = (p.consensus_sel + 1) % 5;
        prop_assert_ne!(&base, &build_query(&engine, &group, &items, &q).cache_key());

        // Layout.
        let mut q = p.clone();
        q.layout_single = !p.layout_single;
        prop_assert_ne!(&base, &build_query(&engine, &group, &items, &q).cache_key());

        // Normalization.
        let mut q = p.clone();
        q.normalize = !p.normalize;
        prop_assert_ne!(&base, &build_query(&engine, &group, &items, &q).cache_key());

        // Algorithm family.
        let mut q = p.clone();
        q.algorithm_sel = (p.algorithm_sel + 1) % 3;
        prop_assert_ne!(&base, &build_query(&engine, &group, &items, &q).cache_key());

        // One itemset element replaced by an id outside the set.
        let mut changed_items = items.clone();
        changed_items[0] = ItemId(UNIVERSE_ITEMS + 1);
        prop_assert_ne!(
            &base,
            &build_query(&engine, &group, &changed_items, &p).cache_key()
        );

        // One itemset element dropped (length change).
        if items.len() > 1 {
            prop_assert_ne!(
                &base,
                &build_query(&engine, &group, &items[1..], &p).cache_key()
            );
        }

        // One member replaced by a user outside the group.
        let mut changed_members = members.clone();
        changed_members[0] = UserId(UNIVERSE_USERS + 1);
        let changed_group = Group::new(changed_members).unwrap();
        prop_assert_ne!(
            &base,
            &build_query(&engine, &changed_group, &items, &p).cache_key()
        );

        // k inside the algorithm config is overridden by the query's
        // own k and must NOT separate keys.
        if p.algorithm_sel == 0 {
            let alt = build_query(&engine, &group, &items, &p)
                .algorithm(Algorithm::Greca(
                    GrecaConfig::top(99).check_interval(CheckInterval::EverySweep),
                ))
                .cache_key();
            let same = build_query(&engine, &group, &items, &p)
                .algorithm(Algorithm::Greca(
                    GrecaConfig::top(1).check_interval(CheckInterval::EverySweep),
                ))
                .cache_key();
            prop_assert_eq!(&alt, &same);
        }
    }
}
