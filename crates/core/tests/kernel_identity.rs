//! Bit-identity of the allocation-free GRECA kernel.
//!
//! The kernel rewrite (dense item arena, incremental bound maintenance,
//! bounded top-k heap, reusable scratch) must change *nothing*
//! observable: itemsets, `[LB, UB]` envelopes, sequential-access counts,
//! sweep counts and stop reasons all stay bit-identical to the
//! pre-refactor semantics, for every `StoppingRule × CheckInterval`
//! combination.
//!
//! Two oracles pin this down:
//!
//! * [`reference`] — the pre-refactor `greca_topk` implementation,
//!   kept here **verbatim** (HashMap item buffer, full bound recompute
//!   per check, full LB sort). Every kernel output is compared against
//!   it with full `TopKResult` equality, which is as
//!   mutation-resistant as it gets: any behavioral drift in the new
//!   kernel shows up as a concrete field diff.
//! * `StoppingRule::Exhaustive` — the in-tree truth: the returned
//!   itemset's exact scores must match the exhaustive run's top-k.
//!
//! Coverage: random instances over AffinityMode × ConsensusFunction ×
//! ListLayout with k ∈ {1, paper default, |items|}, plus the degenerate
//! shapes (singleton member, empty itemset, all-tied scores) as
//! deterministic cases.

use greca_affinity::{AffinityMode, GroupAffinity, PopulationAffinity, TableAffinitySource};
use greca_cf::PreferenceList;
use greca_consensus::ConsensusFunction;
use greca_core::{
    greca_topk_with, CheckInterval, GrecaConfig, GrecaScratch, ListLayout, MaterializedInputs,
    StoppingRule,
};
use greca_dataset::{Granularity, Group, ItemId, Timeline, UserId};
use proptest::prelude::*;

/// The pre-refactor GRECA implementation, verbatim (modulo the
/// `list_contains_pair` helper being inlined below it and imports going
/// through the public API). Do not "improve" this code: its whole value
/// is being the behavioral snapshot the kernel is measured against.
mod reference {
    use greca_consensus::ConsensusFunction;
    use greca_core::CheckInterval;
    use greca_core::{
        AccessStats, BoundScorer, GrecaConfig, GrecaInputs, Interval, ListKind, ListView,
        StopReason, StoppingRule, TopKItem, TopKResult,
    };
    use greca_dataset::ItemId;
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    struct ItemState {
        aprefs: Vec<Option<f64>>,
        bounds: Interval,
    }

    struct RunState<'a> {
        inputs: &'a GrecaInputs<'a>,
        scorer: BoundScorer<'a>,
        positions: Vec<usize>,
        cursors: Vec<f64>,
        pair_static: Vec<Option<f64>>,
        pair_period: Vec<Vec<Option<f64>>>,
        items: HashMap<u32, ItemState>,
        pruned: std::collections::HashSet<u32>,
        pair_affs: Vec<Interval>,
        stats: AccessStats,
        lists: Vec<ListView<'a>>,
    }

    impl<'a> RunState<'a> {
        fn new(inputs: &'a GrecaInputs<'a>, scorer: BoundScorer<'a>) -> Self {
            let lists: Vec<ListView<'a>> = inputs.all_lists().collect();
            let stats = AccessStats::new(inputs.total_entries());
            RunState {
                inputs,
                scorer,
                positions: vec![0; lists.len()],
                cursors: lists
                    .iter()
                    .map(|l| l.first_score().unwrap_or(0.0))
                    .collect(),
                pair_static: vec![None; inputs.num_pairs],
                pair_period: vec![vec![None; inputs.num_pairs]; inputs.period_lists.len()],
                items: HashMap::new(),
                pruned: std::collections::HashSet::new(),
                pair_affs: Vec::new(),
                stats,
                lists,
            }
        }

        fn sweep(&mut self) -> bool {
            let mut read_any = false;
            for li in 0..self.lists.len() {
                let pos = self.positions[li];
                let list = self.lists[li];
                if pos >= list.len() {
                    continue;
                }
                let (id, score) = list.entry(pos);
                self.positions[li] = pos + 1;
                self.cursors[li] = score;
                self.stats.record_sa();
                read_any = true;
                match list.kind {
                    ListKind::Preference { member } => {
                        if self.pruned.contains(&id) {
                            continue;
                        }
                        let n = self.inputs.num_members;
                        let entry = self.items.entry(id).or_insert_with(|| ItemState {
                            aprefs: vec![None; n],
                            bounds: Interval::new(f64::NEG_INFINITY, f64::INFINITY),
                        });
                        entry.aprefs[member as usize] = Some(score);
                    }
                    ListKind::StaticAffinity => {
                        self.pair_static[id as usize] = Some(score);
                    }
                    ListKind::PeriodicAffinity { period } => {
                        self.pair_period[period as usize][id as usize] = Some(score);
                    }
                }
            }
            read_any
        }

        fn static_cursor(&self, pair: usize) -> f64 {
            let base = self.inputs.pref_lists.len();
            let mut best: f64 = 0.0;
            for (off, &list) in self.inputs.static_lists.iter().enumerate() {
                let li = base + off;
                if self.positions[li] < list.len() && list_contains_pair(list, pair) {
                    best = best.max(self.cursors[li]);
                }
            }
            best
        }

        fn period_cursor(&self, period: usize, pair: usize) -> f64 {
            let mut best: f64 = 0.0;
            let mut li = self.inputs.pref_lists.len() + self.inputs.static_lists.len();
            for (p, lists) in self.inputs.period_lists.iter().enumerate() {
                for &list in lists {
                    if p == period
                        && self.positions[li] < list.len()
                        && list_contains_pair(list, pair)
                    {
                        best = best.max(self.cursors[li]);
                    }
                    li += 1;
                }
            }
            best
        }

        fn refresh_pair_affs(&mut self) {
            let n_pairs = self.inputs.num_pairs;
            let mode_static = !self.inputs.static_lists.is_empty();
            let n_periods = self.inputs.period_lists.len();
            let mut out = Vec::with_capacity(n_pairs);
            for pair in 0..n_pairs {
                let s_iv = match self.pair_static[pair] {
                    Some(v) => Interval::exact(v),
                    None if !mode_static => Interval::exact(0.0),
                    None => Interval::new(0.0, self.static_cursor(pair)),
                };
                let comps: Vec<Interval> = (0..n_periods)
                    .map(|p| match self.pair_period[p][pair] {
                        Some(v) => Interval::exact(v),
                        None => Interval::new(0.0, self.period_cursor(p, pair)),
                    })
                    .collect();
                out.push(self.scorer.pair_affinity_interval(s_iv, &comps));
            }
            self.pair_affs = out;
        }

        fn pref_cursor(&self, member: usize) -> f64 {
            let list = self.inputs.pref_lists.get(member).expect("member list");
            if self.positions[member] >= list.len() {
                list.last_score().unwrap_or(0.0)
            } else {
                self.cursors[member]
            }
        }

        fn refresh_bounds(&mut self) {
            self.refresh_pair_affs();
            let n = self.inputs.num_members;
            let cursors: Vec<f64> = (0..n).map(|m| self.pref_cursor(m)).collect();
            let pair_affs = std::mem::take(&mut self.pair_affs);
            for st in self.items.values_mut() {
                let aprefs: Vec<Interval> = st
                    .aprefs
                    .iter()
                    .enumerate()
                    .map(|(m, v)| match v {
                        Some(x) => Interval::exact(*x),
                        None => Interval::new(0.0, cursors[m]),
                    })
                    .collect();
                st.bounds = self.scorer.score_interval(&aprefs, &pair_affs);
            }
            self.pair_affs = pair_affs;
        }

        fn threshold(&self) -> Option<f64> {
            let n = self.inputs.num_members;
            let any_exhausted =
                (0..n).any(|m| self.positions[m] >= self.inputs.pref_lists[m].len());
            if any_exhausted {
                return None;
            }
            let aprefs: Vec<Interval> = (0..n)
                .map(|m| Interval::new(0.0, self.pref_cursor(m)))
                .collect();
            Some(self.scorer.score_interval(&aprefs, &self.pair_affs).hi)
        }
    }

    fn list_contains_pair(list: ListView<'_>, pair: usize) -> bool {
        list.contains_id(pair as u32)
    }

    pub fn greca_topk(
        inputs: &GrecaInputs<'_>,
        affinity: &greca_affinity::GroupAffinity,
        consensus: ConsensusFunction,
        normalize_rpref: bool,
        config: GrecaConfig,
    ) -> TopKResult {
        assert!(config.k > 0, "k must be positive");
        assert_eq!(
            affinity.num_pairs(),
            inputs.num_pairs,
            "affinity view must match the inputs"
        );
        let scorer = BoundScorer::new(affinity, consensus, normalize_rpref);
        let mut state = RunState::new(inputs, scorer);
        let k = config.k.min(inputs.num_items.max(1));
        let mut sweeps: u64 = 0;
        let mut since_check: u64 = 0;
        let mut stop_reason = StopReason::Exhausted;

        loop {
            let read_any = state.sweep();
            if !read_any {
                break;
            }
            sweeps += 1;
            since_check += 1;
            let check_now = match config.check_interval {
                CheckInterval::EverySweep => true,
                CheckInterval::Sweeps(n) => since_check >= n as u64,
                CheckInterval::Adaptive => {
                    let target = (state.items.len() as u64 / 128).clamp(1, 32);
                    since_check >= target
                }
            };
            if !check_now || matches!(config.stopping, StoppingRule::Exhaustive) {
                continue;
            }
            since_check = 0;
            state.refresh_bounds();
            if state.items.len() < k {
                continue;
            }
            let mut lbs: Vec<f64> = state.items.values().map(|s| s.bounds.lo).collect();
            lbs.sort_by(|a, b| b.partial_cmp(a).expect("finite bounds"));
            let kth_lb = lbs[k - 1];
            let threshold = state.threshold();
            let threshold_ok = threshold.is_none_or(|t| t <= kth_lb + 1e-12);

            match config.stopping {
                StoppingRule::Greca => {
                    let before = state.items.len();
                    if before > k {
                        let mut ranked: Vec<(u32, f64)> = state
                            .items
                            .iter()
                            .map(|(&id, s)| (id, s.bounds.lo))
                            .collect();
                        ranked.sort_by(|a, b| {
                            b.1.partial_cmp(&a.1)
                                .expect("finite")
                                .then_with(|| a.0.cmp(&b.0))
                        });
                        let topk: std::collections::HashSet<u32> =
                            ranked[..k].iter().map(|&(id, _)| id).collect();
                        let pruned: Vec<u32> = state
                            .items
                            .iter()
                            .filter(|(&id, s)| !topk.contains(&id) && s.bounds.hi <= kth_lb + 1e-12)
                            .map(|(&id, _)| id)
                            .collect();
                        for id in pruned {
                            state.items.remove(&id);
                            state.pruned.insert(id);
                        }
                    }
                    if state.items.len() == k && threshold_ok {
                        stop_reason = if state.pruned.is_empty() {
                            StopReason::Threshold
                        } else {
                            StopReason::Buffer
                        };
                        break;
                    }
                }
                StoppingRule::ThresholdOnly => {
                    if state.items.len() == k && threshold_ok {
                        stop_reason = StopReason::Threshold;
                        break;
                    }
                }
                StoppingRule::Exhaustive => unreachable!("handled above"),
            }
        }

        if matches!(stop_reason, StopReason::Exhausted) {
            state.refresh_bounds();
        }
        let mut ranked: Vec<(u32, Interval)> =
            state.items.iter().map(|(&id, s)| (id, s.bounds)).collect();
        ranked.sort_by(|a, b| {
            b.1.lo
                .partial_cmp(&a.1.lo)
                .expect("finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        TopKResult {
            items: ranked
                .into_iter()
                .map(|(id, iv)| TopKItem {
                    item: ItemId(id),
                    lb: iv.lo,
                    ub: iv.hi,
                })
                .collect(),
            stats: state.stats,
            sweeps,
            stop_reason,
        }
    }
}

/// One test world: preference tables plus a population-affinity index.
#[derive(Debug, Clone)]
struct World {
    affinity: GroupAffinity,
    inputs: MaterializedInputs,
}

fn num_pairs(n: usize) -> usize {
    n * (n - 1) / 2
}

/// Build a world from raw tables.
#[allow(clippy::too_many_arguments)]
fn world(
    n: usize,
    m: usize,
    periods: usize,
    aprefs: &[Vec<f64>],
    static_raw: &[f64],
    periodic_raw: &[Vec<f64>],
    mode: AffinityMode,
    layout: ListLayout,
) -> World {
    let users: Vec<UserId> = (0..n as u32).map(UserId).collect();
    // A singleton group cannot come from a population index (it needs
    // ≥ 2 users); build its trivial affinity view directly.
    if n == 1 {
        let mode = match (periods, mode) {
            (0, m) if m.is_temporal() => AffinityMode::StaticOnly,
            (_, m) => m,
        };
        let affinity = GroupAffinity::new(
            users.clone(),
            mode,
            vec![],
            vec![vec![]; periods],
            vec![0.0; periods],
        );
        let pref_lists = vec![PreferenceList::from_entries(
            users[0],
            (0..m).map(|i| (ItemId(i as u32), aprefs[0][i])).collect(),
        )
        .expect("finite scores")];
        let inputs = MaterializedInputs::build(&pref_lists, &affinity, layout).expect("finite");
        return World { affinity, inputs };
    }
    let mut src = TableAffinitySource::new();
    let mut pair = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            src.set_static(users[i], users[j], static_raw[pair]);
            pair += 1;
        }
    }
    let pop = if periods == 0 {
        PopulationAffinity::new_static_only(&src, &users)
    } else {
        let tl = Timeline::discretize(0, (periods as i64) * 100, Granularity::Custom(100)).unwrap();
        for (p, pdata) in periodic_raw.iter().enumerate() {
            let start = tl.periods()[p].start;
            let mut pr = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    src.set_periodic(users[i], users[j], start, pdata[pr]);
                    pr += 1;
                }
            }
        }
        PopulationAffinity::build(&src, &users, &tl)
    };
    let group = Group::new(users.clone()).unwrap();
    // A temporal mode needs at least one period.
    let mode = match (periods, mode) {
        (0, m) if m.is_temporal() => AffinityMode::StaticOnly,
        (_, m) => m,
    };
    let affinity = pop.group_view(&group, periods.saturating_sub(1), mode);
    let pref_lists: Vec<PreferenceList> = (0..n)
        .map(|u| {
            PreferenceList::from_entries(
                users[u],
                (0..m).map(|i| (ItemId(i as u32), aprefs[u][i])).collect(),
            )
            .expect("finite scores")
        })
        .collect();
    let inputs = MaterializedInputs::build(&pref_lists, &affinity, layout).expect("finite");
    World { affinity, inputs }
}

const ALL_STOPPING: [StoppingRule; 3] = [
    StoppingRule::Greca,
    StoppingRule::ThresholdOnly,
    StoppingRule::Exhaustive,
];

const ALL_INTERVALS: [CheckInterval; 4] = [
    CheckInterval::EverySweep,
    CheckInterval::Sweeps(1),
    CheckInterval::Sweeps(3),
    CheckInterval::Adaptive,
];

/// Assert full-result identity between the new kernel (with the given
/// shared, recycled scratch) and the reference implementation, for every
/// StoppingRule × CheckInterval at the given `k`; also sanity-check the
/// returned itemset against the Exhaustive truth.
fn assert_identical(
    w: &World,
    consensus: ConsensusFunction,
    normalize: bool,
    k: usize,
    scratch: &mut GrecaScratch,
) {
    let views = w.inputs.views();
    let truth = {
        let config = GrecaConfig::top(k).stopping(StoppingRule::Exhaustive);
        reference::greca_topk(&views, &w.affinity, consensus, normalize, config)
    };
    for stopping in ALL_STOPPING {
        for interval in ALL_INTERVALS {
            let config = GrecaConfig::top(k)
                .stopping(stopping)
                .check_interval(interval);
            let want = reference::greca_topk(&views, &w.affinity, consensus, normalize, config);
            let got = greca_topk_with(&views, &w.affinity, consensus, normalize, config, scratch);
            assert_eq!(
                got,
                want,
                "kernel drifted from reference at {stopping:?}/{interval:?} k={k} \
                 consensus={} normalize={normalize}",
                consensus.label()
            );
            // Early stopping returns the same itemset the exhaustive
            // truth does (score ties may reorder; the exact LB multiset
            // of the exhaustive run is the cleanest itemset identity).
            let mut got_ids: Vec<u32> = got.items.iter().map(|t| t.item.0).collect();
            got_ids.sort_unstable();
            let mut truth_scores: Vec<f64> = truth.items.iter().map(|t| t.lb).collect();
            truth_scores.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let exact_of = |id: u32| truth.items.iter().find(|t| t.item.0 == id).map(|t| t.lb);
            // Every returned item that the exhaustive top-k also ranked
            // must carry a score matching the truth multiset.
            for (gi, &id) in got_ids.iter().enumerate() {
                if let Some(s) = exact_of(id) {
                    assert!(
                        truth_scores.iter().any(|&t| (t - s).abs() < 1e-9),
                        "item {id} (rank {gi}) score {s} not in exhaustive top-k"
                    );
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Instance {
    n: usize,
    m: usize,
    periods: usize,
    aprefs: Vec<Vec<f64>>,
    static_raw: Vec<f64>,
    periodic_raw: Vec<Vec<f64>>,
    mode_sel: u8,
    consensus_sel: u8,
    layout_single: bool,
    normalize: bool,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (1usize..=4, 1usize..=16, 0usize..=3).prop_flat_map(|(n, m, periods)| {
        let aprefs = proptest::collection::vec(proptest::collection::vec(0.0f64..5.0, m), n);
        let static_raw = proptest::collection::vec(0.0f64..3.0, num_pairs(n).max(1));
        let periodic_raw = proptest::collection::vec(
            proptest::collection::vec(0.0f64..4.0, num_pairs(n).max(1)),
            periods,
        );
        (
            Just(n),
            Just(m),
            Just(periods),
            aprefs,
            static_raw,
            periodic_raw,
            0u8..4,
            0u8..5,
            any::<bool>(),
            any::<bool>(),
        )
            .prop_map(
                |(
                    n,
                    m,
                    periods,
                    aprefs,
                    static_raw,
                    periodic_raw,
                    mode_sel,
                    consensus_sel,
                    layout_single,
                    normalize,
                )| Instance {
                    n,
                    m,
                    periods,
                    aprefs,
                    static_raw,
                    periodic_raw,
                    mode_sel,
                    consensus_sel,
                    layout_single,
                    normalize,
                },
            )
    })
}

fn mode_of(sel: u8) -> AffinityMode {
    match sel {
        0 => AffinityMode::None,
        1 => AffinityMode::StaticOnly,
        2 => AffinityMode::Discrete,
        _ => AffinityMode::continuous(),
    }
}

fn consensus_of(sel: u8) -> ConsensusFunction {
    match sel {
        0 => ConsensusFunction::average_preference(),
        1 => ConsensusFunction::least_misery(),
        2 => ConsensusFunction::pairwise_disagreement(0.8),
        3 => ConsensusFunction::pairwise_disagreement(0.2),
        _ => ConsensusFunction::variance_disagreement(0.5),
    }
}

fn world_of(inst: &Instance) -> World {
    world(
        inst.n,
        inst.m,
        inst.periods,
        &inst.aprefs,
        &inst.static_raw,
        &inst.periodic_raw,
        mode_of(inst.mode_sel),
        if inst.layout_single {
            ListLayout::Single
        } else {
            ListLayout::Decomposed
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(72))]

    /// The headline contract: full-result identity to the pre-refactor
    /// implementation, every StoppingRule × CheckInterval, with one
    /// scratch recycled across every run of every case (so cross-query
    /// state leakage would surface as a diff too). k sweeps the
    /// degenerate 1, the paper's 10 and the full itemset.
    #[test]
    fn kernel_is_bit_identical_to_reference(inst in instance_strategy()) {
        let w = world_of(&inst);
        let consensus = consensus_of(inst.consensus_sel);
        let mut scratch = GrecaScratch::new();
        for k in [1, 10.min(inst.m.max(1)), inst.m.max(1)] {
            assert_identical(&w, consensus, inst.normalize, k, &mut scratch);
        }
    }
}

/// Deterministic degenerate shapes the strategy is unlikely to weight
/// heavily, across the full AffinityMode × ConsensusFunction grid.
#[test]
fn degenerate_shapes_are_bit_identical() {
    let mut scratch = GrecaScratch::new();
    for mode_sel in 0..4u8 {
        for consensus_sel in 0..5u8 {
            let consensus = consensus_of(consensus_sel);
            for layout in [ListLayout::Decomposed, ListLayout::Single] {
                // Singleton member: no pairs, no affinity lists.
                let w = world(
                    1,
                    5,
                    2,
                    &[vec![3.0, 1.0, 4.0, 1.0, 5.0]],
                    &[],
                    &[vec![], vec![]],
                    mode_of(mode_sel),
                    layout,
                );
                for k in [1, 5] {
                    assert_identical(&w, consensus, true, k, &mut scratch);
                }

                // Empty itemset: every preference list has zero entries.
                let w = world(
                    3,
                    0,
                    1,
                    &[vec![], vec![], vec![]],
                    &[0.5, 0.2, 0.9],
                    &[vec![0.1, 0.8, 0.3]],
                    mode_of(mode_sel),
                    layout,
                );
                assert_identical(&w, consensus, false, 1, &mut scratch);

                // All-tied scores: every apref and affinity identical, so
                // every bound collapses to one value and pruning decides
                // purely by id ties.
                let w = world(
                    3,
                    6,
                    2,
                    &[vec![2.0; 6], vec![2.0; 6], vec![2.0; 6]],
                    &[0.7; 3],
                    &[vec![0.4; 3], vec![0.4; 3]],
                    mode_of(mode_sel),
                    layout,
                );
                for k in [1, 3, 6] {
                    assert_identical(&w, consensus, true, k, &mut scratch);
                }
            }
        }
    }
}

/// The scratch-recycled engine path returns exactly what a fresh
/// scratch returns (the pool cannot leak state into results), and the
/// pool actually retains workspaces.
#[test]
fn scratch_reuse_is_observable_and_harmless() {
    let w = world(
        3,
        8,
        2,
        &[
            vec![5.0, 4.0, 3.0, 2.0, 1.0, 0.5, 0.2, 0.1],
            vec![0.1, 5.0, 0.2, 4.0, 0.3, 3.0, 0.4, 2.0],
            vec![2.0, 2.0, 2.0, 5.0, 1.0, 1.0, 4.0, 0.0],
        ],
        &[1.0, 0.2, 0.3],
        &[vec![0.8, 0.1, 0.2], vec![0.7, 0.1, 0.1]],
        AffinityMode::Discrete,
        ListLayout::Decomposed,
    );
    let views = w.inputs.views();
    let consensus = ConsensusFunction::average_preference();
    let mut scratch = GrecaScratch::new();
    let config = GrecaConfig::top(3);
    let fresh = greca_topk_with(
        &views,
        &w.affinity,
        consensus,
        true,
        config,
        &mut GrecaScratch::new(),
    );
    // Run a *different* query through the same scratch first, then the
    // original: identical to the fresh-scratch result.
    let _ = greca_topk_with(
        &views,
        &w.affinity,
        ConsensusFunction::least_misery(),
        false,
        GrecaConfig::top(8).check_interval(CheckInterval::Adaptive),
        &mut scratch,
    );
    let reused = greca_topk_with(&views, &w.affinity, consensus, true, config, &mut scratch);
    assert_eq!(fresh, reused);
}
