//! Bit-identity of the batch planner.
//!
//! Every sharing lever in `greca_core::plan` — QueryKey dedup, the
//! shared member-state arena, overlap-bucketed scheduling — must change
//! *nothing* observable: a planned wave's per-query results (itemsets,
//! `[LB, UB]` envelopes, access counts, sweeps, stop reasons) and its
//! summed batch statistics must equal the independent path's exactly,
//! on every storage path the planner can route through (cold, warm
//! full-universe, warm subset-filtered, warm-with-cold-fallback) and
//! for waves mixing engines. Identity is asserted with full
//! `TopKResult` equality — the same oracle discipline as
//! `kernel_identity.rs`.

use greca_affinity::{PopulationAffinity, TableAffinitySource};
use greca_cf::RawRatings;
use greca_core::{run_batch_with, GrecaEngine, GroupQuery, PlanOptions, SharedMemberState};
use greca_dataset::{
    Granularity, Group, ItemId, RatingMatrix, RatingMatrixBuilder, Timeline, UserId,
};

const USERS: usize = 12;
const ITEMS: usize = 24;

/// A deterministic world: 12 users × 24 items with interleaved ratings
/// (so candidate sets differ per group), static affinity on a chain of
/// consecutive users plus a few long-range pairs, two periods.
fn world() -> (RatingMatrix, PopulationAffinity, Vec<ItemId>) {
    let mut b = RatingMatrixBuilder::new(USERS, ITEMS);
    for u in 0..USERS as u32 {
        for i in 0..ITEMS as u32 {
            // Sparse, user-dependent pattern; scores vary per (u, i).
            if (u + i) % 3 == 0 {
                let score = 1.0 + ((u * 7 + i * 3) % 9) as f32 / 2.0;
                b.rate(UserId(u), ItemId(i), score, i64::from(i % 2) * 60);
            }
        }
    }
    let matrix = b.build();
    let mut src = TableAffinitySource::new();
    let tl = Timeline::discretize(0, 120, Granularity::Custom(60)).unwrap();
    for u in 0..(USERS as u32 - 1) {
        src.set_static(UserId(u), UserId(u + 1), 0.3 + f64::from(u % 5) / 10.0);
        src.set_periodic(
            UserId(u),
            UserId(u + 1),
            tl.periods()[(u % 2) as usize].start,
            0.2 + f64::from(u % 3) / 10.0,
        );
    }
    src.set_static(UserId(0), UserId(5), 0.9)
        .set_static(UserId(2), UserId(9), 0.6);
    let users: Vec<UserId> = (0..USERS as u32).map(UserId).collect();
    let pop = PopulationAffinity::build(&src, &users, &tl);
    let items: Vec<ItemId> = (0..ITEMS as u32).map(ItemId).collect();
    (matrix, pop, items)
}

/// Overlapping groups: group `g` holds users `{g, g+1, g+2}`, so every
/// interior user appears in three consecutive groups.
fn overlapping_groups(n: usize) -> Vec<Group> {
    (0..n)
        .map(|g| {
            Group::new(vec![
                UserId(g as u32),
                UserId(g as u32 + 1),
                UserId(g as u32 + 2),
            ])
            .unwrap()
        })
        .collect()
}

/// Member-disjoint groups: `{0,1,2}, {3,4,5}, …` — nothing to share.
fn disjoint_groups() -> Vec<Group> {
    (0..USERS / 3)
        .map(|g| {
            let base = (g * 3) as u32;
            Group::new(vec![UserId(base), UserId(base + 1), UserId(base + 2)]).unwrap()
        })
        .collect()
}

/// Run `queries` planner-off and planner-on and assert full equality of
/// per-query results and summed stats; returns the planner-on result.
fn assert_wave_identical(queries: &[GroupQuery<'_>]) -> greca_core::BatchResult {
    let off = run_batch_with(queries, &PlanOptions { enabled: false });
    let on = run_batch_with(queries, &PlanOptions { enabled: true });
    assert_eq!(
        off.results, on.results,
        "planned wave drifted from independent execution"
    );
    assert_eq!(off.stats, on.stats, "summed access stats must match");
    assert!(off.plan.is_none(), "disabled planner must skip analysis");
    on
}

#[test]
fn cold_overlapping_wave_is_bit_identical() {
    let (matrix, pop, items) = world();
    let raw = RawRatings(&matrix);
    let engine = GrecaEngine::new(&raw, &pop);
    let groups = overlapping_groups(8);
    let queries: Vec<GroupQuery<'_>> = groups
        .iter()
        .map(|g| engine.query(g).items(&items).top(5))
        .collect();
    let on = assert_wave_identical(&queries);
    let plan = on.plan.expect("analyzed wave reports stats");
    assert!(plan.executed_shared, "overlap must route through the arena");
    assert_eq!(plan.wave, 8);
    assert_eq!(plan.unique_queries, 8);
    assert!(plan.shared_member_slots > 0);
    assert!(plan.reused_members > 0, "chained groups reuse member lists");
    assert!(plan.reused_prefix_items > 0);
    assert!(
        plan.shared_member_ratio() > 0.5,
        "interior members dominate"
    );
    // The chain of overlapping groups is one connected component.
    assert_eq!(plan.buckets, 1);
}

#[test]
fn warm_full_universe_wave_is_bit_identical() {
    let (matrix, pop, items) = world();
    let raw = RawRatings(&matrix);
    let engine = GrecaEngine::warm(&raw, &pop, &items).unwrap();
    let groups = overlapping_groups(8);
    let queries: Vec<GroupQuery<'_>> = groups
        .iter()
        .map(|g| engine.query(g).items(&items).top(5))
        .collect();
    let on = assert_wave_identical(&queries);
    let plan = on.plan.expect("analyzed wave reports stats");
    assert!(plan.executed_shared);
    assert!(plan.reused_members > 0, "segment handles are shared");
}

#[test]
fn warm_subset_filtered_wave_is_bit_identical() {
    let (matrix, pop, items) = world();
    let raw = RawRatings(&matrix);
    let engine = GrecaEngine::warm(&raw, &pop, &items).unwrap();
    let subset = &items[..ITEMS / 2];
    let groups = overlapping_groups(8);
    let queries: Vec<GroupQuery<'_>> = groups
        .iter()
        .map(|g| engine.query(g).items(subset).top(5))
        .collect();
    let on = assert_wave_identical(&queries);
    let plan = on.plan.expect("analyzed wave reports stats");
    assert!(plan.executed_shared);
    assert!(
        plan.reused_prefix_items > 0,
        "filter passes are shared per (member, itemset)"
    );
}

#[test]
fn warm_engine_cold_fallback_wave_is_bit_identical() {
    let (matrix, pop, items) = world();
    let raw = RawRatings(&matrix);
    // Warm only over the first 20 items; querying items 18..22 includes
    // foreign items, so coverage fails and preparation falls back to
    // the (shared) cold path — on a warm engine.
    let engine = GrecaEngine::warm(&raw, &pop, &items[..20]).unwrap();
    let foreign = &items[18..22];
    let groups = overlapping_groups(6);
    let queries: Vec<GroupQuery<'_>> = groups
        .iter()
        .map(|g| engine.query(g).items(foreign).top(3))
        .collect();
    let on = assert_wave_identical(&queries);
    assert!(on.plan.expect("analyzed").executed_shared);
}

#[test]
fn duplicate_queries_collapse_to_one_kernel_run() {
    let (matrix, pop, items) = world();
    let raw = RawRatings(&matrix);
    let engine = GrecaEngine::warm(&raw, &pop, &items).unwrap();
    let group = Group::new(vec![UserId(3), UserId(4), UserId(5)]).unwrap();
    let shuffled: Vec<ItemId> = items.iter().rev().copied().collect();
    let queries: Vec<GroupQuery<'_>> = (0..6)
        .map(|i| {
            // Alternate itemset permutations: QueryKey canonicalization
            // must still see one query.
            if i % 2 == 0 {
                engine.query(&group).items(&items).top(5)
            } else {
                engine.query(&group).items(&shuffled).top(5)
            }
        })
        .collect();
    let on = assert_wave_identical(&queries);
    let plan = on.plan.expect("analyzed wave reports stats");
    assert_eq!(plan.unique_queries, 1);
    assert_eq!(plan.dedup_hits, 5);
    // All six slots carry the identical result.
    let first = on.results[0].as_ref().unwrap();
    for r in &on.results[1..] {
        assert_eq!(r.as_ref().unwrap(), first);
    }
}

#[test]
fn mixed_engine_wave_partitions_and_stays_identical() {
    let (matrix, pop, items) = world();
    let raw = RawRatings(&matrix);
    let cold = GrecaEngine::new(&raw, &pop);
    let warm = GrecaEngine::warm(&raw, &pop, &items).unwrap();
    let groups = overlapping_groups(6);
    let queries: Vec<GroupQuery<'_>> = groups
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let engine = if i % 2 == 0 { &cold } else { &warm };
            engine.query(g).items(&items).top(4)
        })
        .collect();
    let on = assert_wave_identical(&queries);
    let plan = on.plan.expect("analyzed wave reports stats");
    assert!(plan.executed_shared);
    // Shared state never crosses engines, so the chain splits into one
    // component per engine at minimum.
    assert!(plan.buckets >= 2);
}

#[test]
fn zero_overlap_wave_falls_back_to_the_independent_path() {
    let (matrix, pop, items) = world();
    let raw = RawRatings(&matrix);
    let engine = GrecaEngine::warm(&raw, &pop, &items).unwrap();
    let groups = disjoint_groups();
    let queries: Vec<GroupQuery<'_>> = groups
        .iter()
        .map(|g| engine.query(g).items(&items).top(5))
        .collect();
    let on = assert_wave_identical(&queries);
    let plan = on.plan.expect("analysis still reported");
    assert!(!plan.executed_shared, "nothing to share → independent path");
    assert_eq!(plan.dedup_hits, 0);
    assert_eq!(plan.shared_member_slots, 0);
    assert_eq!(plan.resolved_members, 0, "no arena was built");
}

#[test]
fn run_shared_matches_run_for_single_queries() {
    let (matrix, pop, items) = world();
    let raw = RawRatings(&matrix);
    let subset = &items[..ITEMS / 2];
    for engine in [
        GrecaEngine::new(&raw, &pop),
        GrecaEngine::warm(&raw, &pop, &items).unwrap(),
    ] {
        let state = SharedMemberState::new();
        for g in overlapping_groups(5) {
            for items_sel in [&items[..], subset] {
                let q = engine.query(&g).items(items_sel).top(5);
                assert_eq!(q.run().unwrap(), q.run_shared(&state).unwrap());
            }
            // Defaulted (empty) itemset resolves per group and keys the
            // arena by what it resolved to.
            let q = engine.query(&g).top(5);
            assert_eq!(q.run(), q.run_shared(&state));
        }
        assert!(state.resolved_members() > 0);
        assert!(state.reused_members() > 0, "repeat members hit the arena");
        assert!(state.entries() > 0);
    }
}

#[test]
fn shared_state_caches_failures_deterministically() {
    let (matrix, pop, _items) = world();
    let raw = RawRatings(&matrix);
    let engine = GrecaEngine::new(&raw, &pop);
    let state = SharedMemberState::new();
    let group = Group::new(vec![UserId(0), UserId(1)]).unwrap();
    // Zero k fails validation identically on both paths.
    let q = engine.query(&group).top(0);
    assert_eq!(q.run(), q.run_shared(&state));
    assert!(q.run_shared(&state).is_err());
}
