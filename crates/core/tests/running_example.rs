//! The paper's running example (§3.1, Tables 1–4), encoded exactly.
//!
//! Three users u1, u2, u3; items i1, i2, i3; one year of history split
//! into two six-month periods. The paper walks GRECA through these
//! inputs and reports that it "returns i1 as the top-1 item to the
//! group". (The intermediate bound values 13.02 / 14.2 in §3.2 are not
//! reproducible from the published formulas — the authors note they
//! "ignore normalization and final averaging" — so we assert the
//! algorithmic outcomes, not those constants; see EXPERIMENTS.md.)

use greca_affinity::{AffinityMode, PopulationAffinity, TableAffinitySource};
use greca_cf::PreferenceList;
use greca_consensus::ConsensusFunction;
use greca_core::{Algorithm, GrecaConfig, ListLayout, PreparedQuery, StoppingRule};
use greca_dataset::{Granularity, Group, ItemId, Timeline, UserId};

const U1: UserId = UserId(1);
const U2: UserId = UserId(2);
const U3: UserId = UserId(3);
const I1: ItemId = ItemId(1);
const I2: ItemId = ItemId(2);
const I3: ItemId = ItemId(3);

/// Table 1: absolute preference lists.
fn preference_lists() -> Vec<PreferenceList> {
    vec![
        PreferenceList::from_entries(U1, vec![(I1, 5.0), (I2, 1.0), (I3, 1.0)]).unwrap(),
        PreferenceList::from_entries(U2, vec![(I1, 5.0), (I2, 1.0), (I3, 0.5)]).unwrap(),
        PreferenceList::from_entries(U3, vec![(I3, 2.0), (I1, 2.0), (I2, 1.0)]).unwrap(),
    ]
}

/// Tables 2–4: static and periodic affinity lists over two periods.
fn world() -> (PopulationAffinity, Timeline) {
    let tl = Timeline::discretize(0, 365 * 86_400, Granularity::Custom(183 * 86_400)).unwrap();
    assert_eq!(tl.num_periods(), 2, "two six-month periods");
    let (p1, p2) = (tl.periods()[0], tl.periods()[1]);
    let mut src = TableAffinitySource::new();
    src.set_static(U1, U2, 1.0)
        .set_static(U1, U3, 0.2)
        .set_static(U2, U3, 0.3)
        .set_periodic(U1, U2, p1.start, 0.8)
        .set_periodic(U1, U3, p1.start, 0.1)
        .set_periodic(U2, U3, p1.start, 0.2)
        .set_periodic(U1, U2, p2.start, 0.7)
        .set_periodic(U1, U3, p2.start, 0.1)
        .set_periodic(U2, U3, p2.start, 0.1);
    let pop = PopulationAffinity::build(&src, &[U1, U2, U3], &tl);
    (pop, tl)
}

fn prepared(mode: AffinityMode) -> PreparedQuery {
    let (pop, tl) = world();
    let group = Group::new(vec![U1, U2, U3]).unwrap();
    let affinity = pop.group_view(&group, tl.num_periods() - 1, mode);
    PreparedQuery::from_parts(affinity, &preference_lists(), ListLayout::Decomposed, false)
        .expect("the running example's tables are finite")
}

#[test]
fn list_shapes_match_section_3_1() {
    let p = prepared(AffinityMode::Discrete);
    // 3 preference lists of 3 items each.
    assert_eq!(p.inputs().pref_lists.len(), 3);
    assert!(p.inputs().pref_lists.iter().all(|l| l.len() == 3));
    // LaffS(u1) with 2 entries, LaffS(u2) with 1, none for u3.
    assert_eq!(p.inputs().static_lists.len(), 2);
    assert_eq!(p.inputs().static_lists[0].len(), 2);
    assert_eq!(p.inputs().static_lists[1].len(), 1);
    // Two periods, each decomposed the same way.
    assert_eq!(p.inputs().period_lists.len(), 2);
    for period in &p.inputs().period_lists {
        assert_eq!(period.len(), 2);
        assert_eq!(period[0].len() + period[1].len(), 3);
    }
    // Total entries: 9 pref + 3 static + 6 periodic = 18.
    assert_eq!(p.inputs().total_entries(), 18);
}

#[test]
fn greca_returns_i1_as_top_1() {
    // §3.2: "For our running example ... this returns i1 as the top-1
    // item to the group."
    let result = prepared(AffinityMode::Discrete)
        .consensus(ConsensusFunction::average_preference())
        .top(1)
        .run();
    assert_eq!(result.items.len(), 1);
    assert_eq!(result.items[0].item, I1);
}

#[test]
fn top_1_is_i1_under_every_affinity_mode() {
    // i1 dominates i2 everywhere and beats i3 for two of three users;
    // every affinity mode must agree on the winner.
    for mode in [
        AffinityMode::None,
        AffinityMode::StaticOnly,
        AffinityMode::Discrete,
        AffinityMode::continuous(),
    ] {
        let result = prepared(mode).top(1).run();
        assert_eq!(result.items[0].item, I1, "{mode:?}");
    }
}

#[test]
fn greca_matches_naive_for_all_k_and_consensus() {
    for mode in [
        AffinityMode::None,
        AffinityMode::StaticOnly,
        AffinityMode::Discrete,
        AffinityMode::continuous(),
    ] {
        for consensus in [
            ConsensusFunction::average_preference(),
            ConsensusFunction::least_misery(),
            ConsensusFunction::pairwise_disagreement(0.8),
            ConsensusFunction::pairwise_disagreement(0.2),
            ConsensusFunction::variance_disagreement(0.5),
        ] {
            let p = prepared(mode).consensus(consensus);
            let exact: Vec<(ItemId, f64)> = p.exact_scores();
            for k in 1..=3 {
                let result = p.clone().top(k).run();
                assert_eq!(result.items.len(), k);
                // The returned itemset's exact scores must equal the
                // naive top-k's score multiset.
                let mut got: Vec<f64> = result
                    .items
                    .iter()
                    .map(|t| {
                        exact
                            .iter()
                            .find(|&&(i, _)| i == t.item)
                            .expect("item exists")
                            .1
                    })
                    .collect();
                got.sort_by(|a, b| b.partial_cmp(a).unwrap());
                let want: Vec<f64> = exact.iter().take(k).map(|&(_, s)| s).collect();
                for (g, w) in got.iter().zip(&want) {
                    assert!(
                        (g - w).abs() < 1e-9,
                        "{mode:?}/{}/k={k}: got scores {got:?}, want {want:?}",
                        consensus.label()
                    );
                }
            }
        }
    }
}

#[test]
fn bounds_sandwich_exact_scores() {
    let p = prepared(AffinityMode::Discrete).top(3);
    let exact = p.exact_scores();
    let result = p.run();
    for t in &result.items {
        let score = exact.iter().find(|&&(i, _)| i == t.item).unwrap().1;
        assert!(
            t.lb - 1e-9 <= score && score <= t.ub + 1e-9,
            "{}: {score} ∉ [{}, {}]",
            t.item,
            t.lb,
            t.ub
        );
    }
}

#[test]
fn decreasing_affinity_between_periods_lowers_pair_affinity() {
    // Tables 3–4: the u1–u2 affinity entry drops from 0.8 to 0.7. After
    // period 2 the pair's discrete affinity must be below its
    // after-period-1 value (relative to the same static base).
    let (pop, _tl) = world();
    let group = Group::new(vec![U1, U2, U3]).unwrap();
    let after_p1 = pop.group_view(&group, 0, AffinityMode::Discrete);
    let after_p2 = pop.group_view(&group, 1, AffinityMode::Discrete);
    let pair = after_p1.pair_of(U1, U2).unwrap();
    // Both periods have positive drift for (u1,u2); the average drift
    // stays positive but the affinity remains finite and ordered
    // sensibly vs the static-only baseline.
    assert!(after_p1.affinity(pair) > after_p1.static_component(pair));
    assert!(after_p2.affinity(pair) > after_p2.static_component(pair));
}

#[test]
fn exhaustive_rule_reads_everything() {
    let p = prepared(AffinityMode::Discrete).top(1);
    let result = p.run_algorithm(Algorithm::Greca(
        GrecaConfig::top(1).stopping(StoppingRule::Exhaustive),
    ));
    assert_eq!(result.stats.sa, p.inputs().total_entries());
    assert_eq!(result.items[0].item, I1);
}

#[test]
fn ta_agrees_with_naive_and_charges_ras() {
    let p = prepared(AffinityMode::Discrete).top(1);
    let ta = p.run_algorithm(Algorithm::Ta(greca_core::TaConfig::default()));
    assert_eq!(ta.items[0].item, I1);
    // §3.1: completing one item's score costs 21 RAs in this example
    // (2 apref RAs are charged per *new* item: the paper charges 3
    // because it also re-fetches the component under the cursor; our
    // accounting charges the n−1 missing ones plus n(n−1)(T+1) affinity
    // fetches = 2 + 18 = 20 per item).
    assert!(ta.stats.ra >= 20, "ra = {}", ta.stats.ra);
}
