//! Property tests: GRECA's correctness guarantee (Lemma 2) on random
//! instances.
//!
//! For arbitrary preference lists, affinity tables, affinity modes,
//! consensus functions, result sizes and list layouts:
//!
//! * GRECA, the TA baseline and the threshold-only variant must all
//!   return an itemset whose exact consensus scores equal the naive
//!   full-scan top-k's score multiset (ties may swap items; scores
//!   cannot differ);
//! * every returned envelope must sandwich the item's exact score;
//! * GRECA never reads more than the naive scan.

use greca_affinity::{AffinityMode, PopulationAffinity, TableAffinitySource};
use greca_cf::{PreferenceList, RawRatings};
use greca_consensus::ConsensusFunction;
use greca_core::{
    Algorithm, CheckInterval, GrecaConfig, GrecaEngine, ListLayout, PreparedQuery, StoppingRule,
    TaConfig,
};
use greca_dataset::{Granularity, Group, ItemId, RatingMatrixBuilder, Timeline, UserId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Instance {
    n: usize,
    m: usize,
    periods: usize,
    aprefs: Vec<Vec<f64>>,       // [user][item]
    static_raw: Vec<f64>,        // per pair
    periodic_raw: Vec<Vec<f64>>, // [period][pair]
    mode_sel: u8,
    consensus_sel: u8,
    k: usize,
    layout_single: bool,
    normalize: bool,
}

fn num_pairs(n: usize) -> usize {
    n * (n - 1) / 2
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (2usize..=4, 1usize..=18, 0usize..=3).prop_flat_map(|(n, m, periods)| {
        let aprefs = proptest::collection::vec(proptest::collection::vec(0.0f64..5.0, m), n);
        let static_raw = proptest::collection::vec(0.0f64..3.0, num_pairs(n));
        let periodic_raw = proptest::collection::vec(
            proptest::collection::vec(0.0f64..4.0, num_pairs(n)),
            periods,
        );
        (
            Just(n),
            Just(m),
            Just(periods),
            aprefs,
            static_raw,
            periodic_raw,
            0u8..4,
            0u8..5,
            1usize..=6,
            any::<bool>(),
            any::<bool>(),
        )
            .prop_map(
                |(
                    n,
                    m,
                    periods,
                    aprefs,
                    static_raw,
                    periodic_raw,
                    mode_sel,
                    consensus_sel,
                    k,
                    layout_single,
                    normalize,
                )| {
                    Instance {
                        n,
                        m,
                        periods,
                        aprefs,
                        static_raw,
                        periodic_raw,
                        mode_sel,
                        consensus_sel,
                        k: k.min(m),
                        layout_single,
                        normalize,
                    }
                },
            )
    })
}

fn mode_of(sel: u8) -> AffinityMode {
    match sel {
        0 => AffinityMode::None,
        1 => AffinityMode::StaticOnly,
        2 => AffinityMode::Discrete,
        _ => AffinityMode::continuous(),
    }
}

fn consensus_of(sel: u8) -> ConsensusFunction {
    match sel {
        0 => ConsensusFunction::average_preference(),
        1 => ConsensusFunction::least_misery(),
        2 => ConsensusFunction::pairwise_disagreement(0.8),
        3 => ConsensusFunction::pairwise_disagreement(0.2),
        _ => ConsensusFunction::variance_disagreement(0.5),
    }
}

/// The instance's user universe and population-affinity index.
fn population_of(inst: &Instance) -> (Vec<UserId>, PopulationAffinity) {
    let users: Vec<UserId> = (0..inst.n as u32).map(UserId).collect();
    let mut src = TableAffinitySource::new();
    let mut pair = 0;
    for i in 0..inst.n {
        for j in (i + 1)..inst.n {
            src.set_static(users[i], users[j], inst.static_raw[pair]);
            pair += 1;
        }
    }
    let pop = if inst.periods == 0 {
        PopulationAffinity::new_static_only(&src, &users)
    } else {
        let tl =
            Timeline::discretize(0, (inst.periods as i64) * 100, Granularity::Custom(100)).unwrap();
        for (p, pdata) in inst.periodic_raw.iter().enumerate() {
            let start = tl.periods()[p].start;
            let mut pr = 0;
            for i in 0..inst.n {
                for j in (i + 1)..inst.n {
                    src.set_periodic(users[i], users[j], start, pdata[pr]);
                    pr += 1;
                }
            }
        }
        PopulationAffinity::build(&src, &users, &tl)
    };
    (users, pop)
}

fn build(inst: &Instance) -> PreparedQuery {
    let (users, pop) = population_of(inst);
    let group = Group::new(users.clone()).unwrap();
    let p_idx = inst.periods.saturating_sub(1);
    let affinity = pop.group_view(&group, p_idx, mode_of(inst.mode_sel));
    let pref_lists: Vec<PreferenceList> = (0..inst.n)
        .map(|u| {
            PreferenceList::from_entries(
                users[u],
                (0..inst.m)
                    .map(|i| (ItemId(i as u32), inst.aprefs[u][i]))
                    .collect(),
            )
            .expect("generated scores are finite")
        })
        .collect();
    let layout = if inst.layout_single {
        ListLayout::Single
    } else {
        ListLayout::Decomposed
    };
    PreparedQuery::from_parts(affinity, &pref_lists, layout, inst.normalize)
        .expect("generated inputs are finite")
        .consensus(consensus_of(inst.consensus_sel))
        .top(inst.k)
}

/// Exact scores of the returned items, descending.
fn returned_scores(p: &PreparedQuery, items: &[ItemId]) -> Vec<f64> {
    let exact = p.exact_scores();
    let mut got: Vec<f64> = items
        .iter()
        .map(|it| exact.iter().find(|&&(i, _)| i == *it).expect("exists").1)
        .collect();
    got.sort_by(|a, b| b.partial_cmp(a).unwrap());
    got
}

fn assert_matches_naive(p: &PreparedQuery, items: &[ItemId], k: usize) {
    let exact = p.exact_scores();
    let want: Vec<f64> = exact.iter().take(k).map(|&(_, s)| s).collect();
    let got = returned_scores(p, items);
    assert_eq!(
        got.len(),
        want.len(),
        "returned {} items, want {}",
        got.len(),
        want.len()
    );
    for (g, w) in got.iter().zip(&want) {
        assert!(
            (g - w).abs() < 1e-6,
            "score mismatch: got {got:?}, want {want:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn greca_equals_naive(inst in instance_strategy()) {
        let p = build(&inst);
        let result = p.run();
        assert_matches_naive(&p, &result.item_ids(), inst.k);
        prop_assert!(result.stats.sa <= p.inputs().total_entries());
    }

    #[test]
    fn threshold_only_equals_naive(inst in instance_strategy()) {
        let p = build(&inst);
        let result = p.run_algorithm(Algorithm::Greca(
            GrecaConfig::default().stopping(StoppingRule::ThresholdOnly),
        ));
        assert_matches_naive(&p, &result.item_ids(), inst.k);
    }

    #[test]
    fn ta_equals_naive(inst in instance_strategy()) {
        let p = build(&inst);
        let result = p.run_algorithm(Algorithm::Ta(TaConfig::default()));
        assert_matches_naive(&p, &result.item_ids(), inst.k);
    }

    #[test]
    fn bounds_sandwich_exact(inst in instance_strategy()) {
        let p = build(&inst);
        let exact = p.exact_scores();
        let result = p.run();
        for t in &result.items {
            let score = exact.iter().find(|&&(i, _)| i == t.item).unwrap().1;
            prop_assert!(t.lb - 1e-6 <= score && score <= t.ub + 1e-6,
                "{}: {score} outside [{}, {}]", t.item, t.lb, t.ub);
        }
    }

    #[test]
    fn adaptive_check_interval_preserves_correctness(inst in instance_strategy()) {
        let p = build(&inst);
        let result = p.run_algorithm(Algorithm::Greca(
            GrecaConfig::default().check_interval(CheckInterval::Adaptive),
        ));
        assert_matches_naive(&p, &result.item_ids(), inst.k);
    }

    /// Cold-vs-warm equivalence: for every AffinityMode × consensus ×
    /// ListLayout instance, a `PreparedQuery` must be **bit-identical**
    /// whether built by the legacy per-query materialization path (cold
    /// engine) or from substrate views (warm engine) — the deprecation-
    /// safety contract of the Substrate layer, for both the zero-copy
    /// full-universe itemset and an order-preserving filtered subset.
    #[test]
    fn warm_substrate_equals_cold_materialization(inst in instance_strategy()) {
        let (users, pop) = population_of(&inst);
        let mut b = RatingMatrixBuilder::new(inst.n, inst.m);
        for (u, row) in inst.aprefs.iter().enumerate() {
            for (i, &score) in row.iter().enumerate() {
                b.rate(users[u], ItemId(i as u32), score as f32, 0);
            }
        }
        let matrix = b.build();
        let raw = RawRatings(&matrix);
        let items: Vec<ItemId> = (0..inst.m as u32).map(ItemId).collect();
        let group = Group::new(users.clone()).unwrap();
        let p_idx = inst.periods.saturating_sub(1);
        // A temporal mode needs at least one period to pass validation.
        let mode = match (inst.periods, mode_of(inst.mode_sel)) {
            (0, m) if m.is_temporal() => AffinityMode::StaticOnly,
            (_, m) => m,
        };
        let consensus = consensus_of(inst.consensus_sel);
        let layout = if inst.layout_single {
            ListLayout::Single
        } else {
            ListLayout::Decomposed
        };

        let cold_engine = GrecaEngine::new(&raw, &pop);
        let warm_engine = GrecaEngine::warm(&raw, &pop, &items).expect("finite scores");
        let mk = |engine: &GrecaEngine<'_>, itemset: &[ItemId]| {
            engine
                .query(&group)
                .items(itemset)
                .period(p_idx)
                .affinity(mode)
                .consensus(consensus)
                .layout(layout)
                .top(inst.k)
                .prepare()
                .expect("valid query")
        };

        let cold = mk(&cold_engine, &items);
        let warm = mk(&warm_engine, &items);
        prop_assert!(!cold.is_warm() && warm.is_warm());
        prop_assert_eq!(cold.run(), warm.run());
        prop_assert_eq!(
            cold.run_algorithm(Algorithm::Ta(TaConfig::default())),
            warm.run_algorithm(Algorithm::Ta(TaConfig::default()))
        );
        prop_assert_eq!(
            cold.run_algorithm(Algorithm::Naive),
            warm.run_algorithm(Algorithm::Naive)
        );
        prop_assert_eq!(cold.exact_scores(), warm.exact_scores());

        // A strict-subset itemset goes through the filtered (no-sort)
        // path and must stay bit-identical too.
        let subset: Vec<ItemId> = items.iter().copied().step_by(2).collect();
        let cold_sub = mk(&cold_engine, &subset);
        let warm_sub = mk(&warm_engine, &subset);
        prop_assert!(warm_sub.is_warm());
        prop_assert_eq!(cold_sub.run(), warm_sub.run());
        prop_assert_eq!(cold_sub.exact_scores(), warm_sub.exact_scores());
    }

    #[test]
    fn layouts_agree_on_the_itemset_scores(inst in instance_strategy()) {
        let mut a = inst.clone();
        a.layout_single = false;
        let mut b = inst;
        b.layout_single = true;
        let pa = build(&a);
        let pb = build(&b);
        let ra = pa.run();
        let rb = pb.run();
        let sa = returned_scores(&pa, &ra.item_ids());
        let sb = returned_scores(&pb, &rb.item_ids());
        for (x, y) in sa.iter().zip(&sb) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }
}
