//! Crash-recovery identity property: **for any ingest interleaving and
//! any deterministic crash point in the WAL write stream, recovery
//! rebuilds an engine whose last committed epoch answers queries
//! bit-identically to a cold engine built from exactly the
//! acknowledged state — committed batches are never lost, unacked
//! batches are never resurrected, and the engine keeps working after
//! recovery.**
//!
//! Each generated instance runs a [`LiveEngine`] with a WAL whose
//! fault plan schedules an [`IoFault::Crash`] (partial frame write,
//! then every subsequent WAL write fails — a process death frozen in
//! amber) at a drawn write-op index. The test tracks a shadow rating
//! log: a snapshot at every *acknowledged* publish, plus the tail of
//! acknowledged-but-unpublished stage calls. After the crash it drops
//! the engine, recovers from the log directory with a clean plan, and
//! asserts:
//!
//! 1. the recovered epoch is the last acknowledged publish;
//! 2. a pinned query equals a cold [`GrecaEngine`] refit on the shadow
//!    snapshot, bit for bit;
//! 3. the staged tail survives iff its stage calls were acknowledged;
//! 4. client idempotency keys are re-learned (a retried key is a
//!    duplicate, not a double-apply);
//! 5. staging and publishing resume cleanly, and the next epoch equals
//!    a cold refit on shadow + tail + resumed events.

use greca_affinity::{AffinityMode, PopulationAffinity, TableAffinitySource};
use greca_cf::{CfConfig, PreferenceProvider, RawRatings, UserCfModel};
use greca_consensus::ConsensusFunction;
use greca_core::{
    BuildOptions, FaultCtx, FaultPlan, GrecaEngine, IoFault, LiveEngine, LiveModel, QueryError,
    Wal, WalOptions,
};
use greca_dataset::{Group, ItemId, Rating, RatingMatrix, RatingMatrixBuilder, UserId};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Clone, Copy)]
struct Event {
    user: usize,
    item: usize,
    value: f64,
    retract: bool,
}

#[derive(Debug, Clone)]
struct CrashInstance {
    n: usize,
    m: usize,
    static_raw: Vec<f64>,
    initial: Vec<Option<f64>>,
    /// Pre-crash interleaving; each batch publishes when its flag is set.
    batches: Vec<(Vec<Event>, bool)>,
    /// Events staged after recovery.
    resume: Vec<Event>,
    usercf: bool,
    consensus_sel: u8,
    k: usize,
    group_size: usize,
    /// WAL write-op index at which the crash fires (may be past the
    /// end of the stream — then this is a clean-shutdown recovery).
    crash_op: u64,
    /// How much of the crashing frame reaches disk, in permille.
    keep_permille: u16,
    seed: u64,
}

fn num_pairs(n: usize) -> usize {
    n * (n - 1) / 2
}

fn instance_strategy() -> impl Strategy<Value = CrashInstance> {
    (2usize..=4, 3usize..=6).prop_flat_map(|(n, m)| {
        let static_raw = proptest::collection::vec(0.0f64..3.0, num_pairs(n));
        let initial =
            proptest::collection::vec((any::<bool>(), 0.5f64..5.0), n * m).prop_map(|cells| {
                cells
                    .into_iter()
                    .map(|(keep, v)| keep.then_some(v))
                    .collect::<Vec<Option<f64>>>()
            });
        let event =
            (0..n, 0..m, 0.5f64..5.0, any::<bool>()).prop_map(|(user, item, value, retract)| {
                Event {
                    user,
                    item,
                    value,
                    retract,
                }
            });
        let batches = proptest::collection::vec(
            (proptest::collection::vec(event, 1..4usize), any::<bool>()),
            1..5usize,
        );
        let event2 =
            (0..n, 0..m, 0.5f64..5.0, any::<bool>()).prop_map(|(user, item, value, retract)| {
                Event {
                    user,
                    item,
                    value,
                    retract,
                }
            });
        let resume = proptest::collection::vec(event2, 1..4usize);
        (
            Just(n),
            Just(m),
            static_raw,
            initial,
            batches,
            resume,
            (any::<bool>(), 0u8..5),
            (1usize..=3, 2usize..=3),
            (0u64..14, 0u16..=1000, any::<u64>()),
        )
            .prop_map(
                |(
                    n,
                    m,
                    static_raw,
                    initial,
                    batches,
                    resume,
                    (usercf, consensus_sel),
                    (k, group_size),
                    (crash_op, keep_permille, seed),
                )| CrashInstance {
                    n,
                    m,
                    static_raw,
                    initial,
                    batches,
                    resume,
                    usercf,
                    consensus_sel,
                    k: k.min(m),
                    group_size: group_size.min(n),
                    crash_op,
                    keep_permille,
                    seed,
                },
            )
    })
}

fn consensus_of(sel: u8) -> ConsensusFunction {
    match sel {
        0 => ConsensusFunction::average_preference(),
        1 => ConsensusFunction::least_misery(),
        2 => ConsensusFunction::pairwise_disagreement(0.8),
        3 => ConsensusFunction::pairwise_disagreement(0.2),
        _ => ConsensusFunction::variance_disagreement(0.5),
    }
}

fn population_of(inst: &CrashInstance) -> (Vec<UserId>, PopulationAffinity) {
    let users: Vec<UserId> = (0..inst.n as u32).map(UserId).collect();
    let mut src = TableAffinitySource::new();
    let mut pair = 0;
    for i in 0..inst.n {
        for j in (i + 1)..inst.n {
            src.set_static(users[i], users[j], inst.static_raw[pair]);
            pair += 1;
        }
    }
    let pop = PopulationAffinity::new_static_only(&src, &users);
    (users, pop)
}

fn matrix_of(log: &BTreeMap<(u32, u32), f32>, n: usize, m: usize) -> RatingMatrix {
    let mut b = RatingMatrixBuilder::new(n, m);
    for (&(u, i), &v) in log {
        b.rate(UserId(u), ItemId(i), v, 0);
    }
    b.build()
}

fn apply(log: &mut BTreeMap<(u32, u32), f32>, e: &Event) {
    if e.retract {
        log.remove(&(e.user as u32, e.item as u32));
    } else {
        log.insert((e.user as u32, e.item as u32), e.value as f32);
    }
}

fn rating(e: &Event) -> Rating {
    Rating {
        user: UserId(e.user as u32),
        item: ItemId(e.item as u32),
        value: e.value as f32,
        ts: 0,
    }
}

fn scratch_dir() -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("greca-crashrec-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Top-k of `engine` (warm, pinned) must equal a cold refit on `log`.
fn assert_identical(
    live: &LiveEngine,
    log: &BTreeMap<(u32, u32), f32>,
    inst: &CrashInstance,
    pop: &PopulationAffinity,
    group: &Group,
    items: &[ItemId],
    what: &str,
) -> Result<(), TestCaseError> {
    let expected = matrix_of(log, inst.n, inst.m);
    let provider: Box<dyn PreferenceProvider + Sync> = if inst.usercf {
        Box::new(UserCfModel::fit(&expected, CfConfig::default()))
    } else {
        Box::new(RawRatings(&expected))
    };
    let cold_engine = GrecaEngine::new(provider.as_ref(), pop);
    let pin = live.pin();
    for &u in group.members() {
        prop_assert_eq!(
            pin.matrix().user_ratings(u),
            expected.user_ratings(u),
            "{}: member ratings diverged",
            what
        );
    }
    let warm = pin
        .engine()
        .query(group)
        .items(items)
        .affinity(AffinityMode::StaticOnly)
        .consensus(consensus_of(inst.consensus_sel))
        .top(inst.k)
        .run();
    let cold = cold_engine
        .query(group)
        .items(items)
        .affinity(AffinityMode::StaticOnly)
        .consensus(consensus_of(inst.consensus_sel))
        .top(inst.k)
        .run();
    prop_assert_eq!(cold, warm, "{}: warm/cold top-k diverged", what);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn recovery_restores_the_acknowledged_state(inst in instance_strategy()) {
        let (users, pop) = population_of(&inst);
        let items: Vec<ItemId> = (0..inst.m as u32).map(ItemId).collect();
        let group = Group::new(users[..inst.group_size].to_vec()).unwrap();

        // Committed shadow state (epoch 0 = the initial matrix).
        let mut log: BTreeMap<(u32, u32), f32> = BTreeMap::new();
        for (cell, v) in inst.initial.iter().enumerate() {
            if let Some(v) = v {
                log.insert(((cell / inst.m) as u32, (cell % inst.m) as u32), *v as f32);
            }
        }
        let initial = matrix_of(&log, inst.n, inst.m);
        let model = if inst.usercf {
            LiveModel::UserCf(CfConfig::default())
        } else {
            LiveModel::Raw
        };

        let dir = scratch_dir();
        let plan = Arc::new(FaultPlan::new(inst.seed).schedule(
            FaultCtx::WalWrite,
            inst.crash_op,
            IoFault::Crash { keep_permille: inst.keep_permille },
        ));
        let faulty = WalOptions { fault: Some(Arc::clone(&plan)), ..WalOptions::default() };
        let wal = Wal::create(&dir, faulty).unwrap();
        let live = LiveEngine::new(&pop, model, &initial, &items).unwrap().with_wal(wal);

        // Acknowledged-but-unpublished tail, and idempotency keys the
        // engine acknowledged (key = stage-call ordinal).
        let mut pending: Vec<Event> = Vec::new();
        let mut acked_keys: Vec<u64> = Vec::new();
        let mut acked_epoch = 0u64;
        let mut next_key = 1u64;
        let mut crashed = false;
        'stream: for (batch, publish) in &inst.batches {
            for e in batch {
                let key = next_key;
                next_key += 1;
                let result = if e.retract {
                    live.stage_keyed(Some(key), &[], &[(UserId(e.user as u32), ItemId(e.item as u32))])
                } else {
                    live.stage_keyed(Some(key), &[rating(e)], &[])
                };
                match result {
                    Ok(staged) => {
                        prop_assert!(!staged.duplicate);
                        pending.push(*e);
                        acked_keys.push(key);
                    }
                    Err(QueryError::Wal { .. }) => { crashed = true; break 'stream; }
                    Err(other) => return Err(TestCaseError::Fail(format!("unexpected: {other:?}"))),
                }
            }
            if *publish {
                match live.publish() {
                    Ok(report) => {
                        acked_epoch = report.epoch;
                        for e in pending.drain(..) {
                            apply(&mut log, &e);
                        }
                    }
                    Err(QueryError::Wal { .. }) => { crashed = true; break 'stream; }
                    Err(other) => return Err(TestCaseError::Fail(format!("unexpected: {other:?}"))),
                }
            }
        }
        prop_assert_eq!(crashed, plan.is_crashed(), "crash iff the plan fired");
        if crashed {
            prop_assert!(live.health().wal_stalled, "a crash stalls the WAL");
        }
        drop(live);

        // Recover with a clean plan — the crashed process is gone.
        let (recovered, report) = LiveEngine::recover(
            &pop, model, &initial, &items,
            BuildOptions::default(), &dir, WalOptions::default(),
        ).unwrap();
        prop_assert_eq!(report.epoch, acked_epoch, "recovered epoch != last acked publish");
        prop_assert_eq!(recovered.epoch(), acked_epoch);
        prop_assert_eq!(
            report.staged_tail == 0,
            pending.is_empty(),
            "tail {} vs pending {:?}",
            report.staged_tail,
            &pending
        );
        let health = recovered.health();
        prop_assert!(health.wal_attached && !health.wal_stalled);
        assert_identical(&recovered, &log, &inst, &pop, &group, &items, "post-recovery")?;

        // Acknowledged idempotency keys were re-learned from the log:
        // retrying one is a duplicate, not a double-apply.
        if let Some(&key) = acked_keys.last() {
            let retry = recovered.stage_keyed(Some(key), &[], &[]).unwrap();
            prop_assert!(retry.duplicate, "acked key {} forgotten by recovery", key);
        }

        // The engine keeps working: stage fresh events, publish the
        // tail with them, and the next epoch matches a cold refit.
        for e in &inst.resume {
            let result = if e.retract {
                recovered.stage_retractions(&[(UserId(e.user as u32), ItemId(e.item as u32))])
            } else {
                recovered.stage(&[rating(e)])
            };
            result.unwrap();
        }
        recovered.publish().unwrap();
        for e in pending.iter().chain(&inst.resume) {
            apply(&mut log, e);
        }
        prop_assert_eq!(recovered.epoch(), acked_epoch + 1);
        assert_identical(&recovered, &log, &inst, &pop, &group, &items, "post-resume")?;

        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
