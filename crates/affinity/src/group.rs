//! Per-group affinity view: the component decomposition GRECA scans.
//!
//! For a group `G` at query period `p`, the affinity of each member pair
//! decomposes into (§3.1):
//!
//! * one **static component** (entry of the `LaffS` lists, Tables 2),
//! * one **periodic component per period `p' ⪯ p`** (entries of the
//!   `LaffV` lists, Tables 3–4).
//!
//! [`GroupAffinity::affinity_from_components`] folds any assignment of
//! these components into a pairwise affinity under the configured
//! [`AffinityMode`]. The function is **monotone non-decreasing in every
//! component**, which is what lets GRECA turn per-component bounds into
//! sound affinity bounds (Lemma 1); a property test asserts it.

use greca_dataset::UserId;
use serde::{Deserialize, Serialize};

/// How pairwise affinity is assembled from its components.
///
/// `None` and `StaticOnly` are the ablations evaluated in Figure 1 B
/// ("affinity-agnostic") and C ("time-agnostic"); `Discrete` and
/// `Continuous` are the paper's two dynamic models (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AffinityMode {
    /// Affinity-agnostic: every pairwise affinity is 0, so relative
    /// preference vanishes and only `apref` matters.
    None,
    /// Time-agnostic: affinity is the static component only.
    StaticOnly,
    /// Discrete dynamic model: `affD = max(0, affS + affV)` with
    /// `affV = Σ drift / #periods` (Eq. 1, Δ = period count).
    Discrete,
    /// Continuous dynamic model: `affC = affS · e^{scale · Σ drift}`
    /// (Eq. 1 with Δ = f−s0 folded into the exponent; see crate docs).
    Continuous {
        /// Exponent gain; 1.0 reproduces the paper's formulation.
        scale: f64,
    },
}

impl AffinityMode {
    /// The paper's default continuous model.
    pub fn continuous() -> Self {
        AffinityMode::Continuous { scale: 1.0 }
    }

    /// Whether this mode consumes per-period components.
    pub fn is_temporal(&self) -> bool {
        matches!(
            self,
            AffinityMode::Discrete | AffinityMode::Continuous { .. }
        )
    }

    /// Whether this mode consumes the static component.
    pub fn uses_static(&self) -> bool {
        !matches!(self, AffinityMode::None)
    }
}

/// Materialized affinity components for one group at one query period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupAffinity {
    members: Vec<UserId>,
    mode: AffinityMode,
    /// Per-pair static component, normalized by the group max (§4.1.2).
    static_comp: Vec<f64>,
    /// `period_comps[p][pair]`: normalized periodic affinity, `[0,1]`.
    period_comps: Vec<Vec<f64>>,
    /// Normalized population average per period (`Avḡ` of Eq. 1).
    avgbar: Vec<f64>,
}

impl GroupAffinity {
    /// Assemble a view from raw parts (the population index does this).
    pub fn new(
        members: Vec<UserId>,
        mode: AffinityMode,
        static_comp: Vec<f64>,
        period_comps: Vec<Vec<f64>>,
        avgbar: Vec<f64>,
    ) -> Self {
        let n = members.len();
        let n_pairs = n * n.saturating_sub(1) / 2;
        assert_eq!(static_comp.len(), n_pairs, "one static component per pair");
        assert_eq!(period_comps.len(), avgbar.len(), "one avg per period");
        for pc in &period_comps {
            assert_eq!(pc.len(), n_pairs, "one periodic component per pair");
        }
        GroupAffinity {
            members,
            mode,
            static_comp,
            period_comps,
            avgbar,
        }
    }

    /// Group members (sorted).
    pub fn members(&self) -> &[UserId] {
        &self.members
    }

    /// The configured mode.
    pub fn mode(&self) -> AffinityMode {
        self.mode
    }

    /// Number of member pairs.
    pub fn num_pairs(&self) -> usize {
        self.static_comp.len()
    }

    /// Number of periods aggregated by the drift (Eq. 1's range).
    pub fn num_periods(&self) -> usize {
        self.period_comps.len()
    }

    /// Triangular pair index of `(u, v)` within the group.
    pub fn pair_of(&self, u: UserId, v: UserId) -> Option<usize> {
        if u == v {
            return None;
        }
        let pu = self.members.binary_search(&u.min(v)).ok()?;
        let pv = self.members.binary_search(&u.max(v)).ok()?;
        let n = self.members.len();
        Some(pu * n - pu * (pu + 1) / 2 + (pv - pu - 1))
    }

    /// The member pair at a triangular index.
    pub fn pair_users(&self, pair: usize) -> (UserId, UserId) {
        let n = self.members.len();
        let mut rem = pair;
        for a in 0..n {
            let row = n - a - 1;
            if rem < row {
                return (self.members[a], self.members[a + 1 + rem]);
            }
            rem -= row;
        }
        panic!("pair index {pair} out of range");
    }

    /// Static component of a pair.
    pub fn static_component(&self, pair: usize) -> f64 {
        self.static_comp[pair]
    }

    /// Periodic component of a pair for period `p` (0-based).
    pub fn period_component(&self, p: usize, pair: usize) -> f64 {
        self.period_comps[p][pair]
    }

    /// Normalized population average for period `p`.
    pub fn avgbar(&self, p: usize) -> f64 {
        self.avgbar[p]
    }

    /// The affinity of a pair from its stored components.
    pub fn affinity(&self, pair: usize) -> f64 {
        let comps: Vec<f64> = (0..self.num_periods())
            .map(|p| self.period_comps[p][pair])
            .collect();
        self.affinity_from_components(self.static_comp[pair], &comps)
    }

    /// Affinity of `(u, v)`; 0 for identical users (a user has no relative
    /// preference with itself).
    pub fn affinity_between(&self, u: UserId, v: UserId) -> f64 {
        match self.pair_of(u, v) {
            Some(p) => self.affinity(p),
            None => 0.0,
        }
    }

    /// Fold an arbitrary component assignment into an affinity value.
    ///
    /// `comps` must hold one value per aggregated period. The fold is
    /// monotone non-decreasing in `static_c` and in every `comps[p]`
    /// (given all inputs ≥ 0), which GRECA's bound computation relies on:
    /// feeding component lower bounds yields an affinity lower bound, and
    /// component upper bounds an upper bound.
    pub fn affinity_from_components(&self, static_c: f64, comps: &[f64]) -> f64 {
        debug_assert_eq!(comps.len(), self.num_periods());
        match self.mode {
            AffinityMode::None => 0.0,
            AffinityMode::StaticOnly => static_c,
            AffinityMode::Discrete => {
                if comps.is_empty() {
                    return static_c.max(0.0);
                }
                let cum: f64 = comps.iter().zip(&self.avgbar).map(|(&c, &a)| c - a).sum();
                (static_c + cum / comps.len() as f64).max(0.0)
            }
            AffinityMode::Continuous { scale } => {
                let cum: f64 = comps.iter().zip(&self.avgbar).map(|(&c, &a)| c - a).sum();
                // Clamp the exponent to keep the result finite even for
                // adversarial component assignments.
                static_c * (scale * cum).clamp(-60.0, 60.0).exp()
            }
        }
    }

    /// Upper bound of any pair affinity achievable with components in
    /// `[0, 1]` — a coarse cap used for sanity checks and thresholds.
    pub fn affinity_cap(&self) -> f64 {
        let ones = vec![1.0; self.num_periods()];
        self.affinity_from_components(1.0, &ones)
    }

    /// Minimum affinity achievable with all components 0 (the LB GRECA
    /// substitutes for unseen entries, §3.2).
    pub fn affinity_floor(&self) -> f64 {
        let zeros = vec![0.0; self.num_periods()];
        self.affinity_from_components(0.0, &zeros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(mode: AffinityMode) -> GroupAffinity {
        GroupAffinity::new(
            vec![UserId(0), UserId(1), UserId(2)],
            mode,
            vec![1.0, 0.2, 0.3],
            vec![vec![1.0, 0.125, 0.25], vec![1.0, 0.143, 0.143]],
            vec![0.458, 0.429],
        )
    }

    #[test]
    fn pair_round_trip() {
        let v = view(AffinityMode::Discrete);
        for pair in 0..v.num_pairs() {
            let (a, b) = v.pair_users(pair);
            assert_eq!(v.pair_of(a, b), Some(pair));
            assert_eq!(v.pair_of(b, a), Some(pair));
        }
        assert_eq!(v.pair_of(UserId(0), UserId(0)), None);
        assert_eq!(v.pair_of(UserId(0), UserId(7)), None);
    }

    #[test]
    fn none_mode_zeroes_everything() {
        let v = view(AffinityMode::None);
        for pair in 0..v.num_pairs() {
            assert_eq!(v.affinity(pair), 0.0);
        }
        assert_eq!(v.affinity_cap(), 0.0);
    }

    #[test]
    fn static_only_ignores_periods() {
        let v = view(AffinityMode::StaticOnly);
        assert_eq!(v.affinity(0), 1.0);
        assert_eq!(v.affinity(1), 0.2);
        assert_eq!(v.affinity_between(UserId(0), UserId(2)), 0.2);
    }

    #[test]
    fn discrete_adds_mean_drift() {
        let v = view(AffinityMode::Discrete);
        // Pair 0 drift: (1.0−0.458) + (1.0−0.429) = 1.113; /2 = 0.5565.
        assert!((v.affinity(0) - (1.0 + 0.5565)).abs() < 1e-9);
        // Pair 1 is below average in both periods → clamped ≥ 0.
        assert!(v.affinity(1) >= 0.0);
    }

    #[test]
    fn continuous_grows_and_decays() {
        let v = view(AffinityMode::continuous());
        assert!(v.affinity(0) > 1.0, "above-average pair grows");
        assert!(v.affinity(1) < 0.2, "below-average pair decays");
        assert!(v.affinity(1) > 0.0, "decay never reaches zero");
    }

    #[test]
    fn zero_static_kills_continuous() {
        let v = GroupAffinity::new(
            vec![UserId(0), UserId(1)],
            AffinityMode::continuous(),
            vec![0.0],
            vec![vec![1.0]],
            vec![0.2],
        );
        assert_eq!(v.affinity(0), 0.0);
    }

    #[test]
    fn monotone_in_components() {
        for mode in [
            AffinityMode::None,
            AffinityMode::StaticOnly,
            AffinityMode::Discrete,
            AffinityMode::continuous(),
        ] {
            let v = view(mode);
            let lo = v.affinity_from_components(0.3, &[0.2, 0.2]);
            let hi_static = v.affinity_from_components(0.6, &[0.2, 0.2]);
            let hi_period = v.affinity_from_components(0.3, &[0.9, 0.2]);
            assert!(hi_static >= lo, "{mode:?} static monotone");
            assert!(hi_period >= lo, "{mode:?} period monotone");
        }
    }

    #[test]
    fn cap_and_floor_bound_real_affinities() {
        for mode in [
            AffinityMode::StaticOnly,
            AffinityMode::Discrete,
            AffinityMode::continuous(),
        ] {
            let v = view(mode);
            for pair in 0..v.num_pairs() {
                let a = v.affinity(pair);
                assert!(a <= v.affinity_cap() + 1e-12, "{mode:?} cap");
                assert!(a >= v.affinity_floor() - 1e-12, "{mode:?} floor");
            }
        }
    }

    #[test]
    fn degenerate_no_periods() {
        let v = GroupAffinity::new(
            vec![UserId(0), UserId(1)],
            AffinityMode::Discrete,
            vec![0.5],
            vec![],
            vec![],
        );
        assert_eq!(v.affinity(0), 0.5);
        assert_eq!(v.num_periods(), 0);
    }

    #[test]
    #[should_panic(expected = "one static component per pair")]
    fn mismatched_components_rejected() {
        let _ = GroupAffinity::new(
            vec![UserId(0), UserId(1), UserId(2)],
            AffinityMode::Discrete,
            vec![0.5],
            vec![],
            vec![],
        );
    }

    #[test]
    fn self_affinity_is_zero() {
        let v = view(AffinityMode::Discrete);
        assert_eq!(v.affinity_between(UserId(1), UserId(1)), 0.0);
    }
}
