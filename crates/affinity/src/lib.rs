//! # greca-affinity
//!
//! Temporal affinity models from §2.1 of *Group Recommendation with
//! Temporal Affinities* (EDBT 2015).
//!
//! Affinity between a user pair `(u, u')` combines:
//!
//! * **static affinity** `affS(u,u')` — time-independent closeness; the
//!   paper uses `|friends(u) ∩ friends(u')|` normalized into `[0,1]`;
//! * **dynamic affinity** `affV(u,u',p)` — the accumulated *drift* of the
//!   pair's periodic affinity `affP` against the population average
//!   (Eq. 1): `affV = Σ_{p'⪯p} (affP(u,u',p') − AvgaffP(p')) / Δ`.
//!
//! Two models combine the components:
//!
//! * **discrete** — `affD = affS + affV`, Δ = number of periods;
//! * **continuous** — `affC = affS · e^{λ(f−s0)}` with λ the drift rate;
//!   substituting λ = affV (whose continuous Δ is `f − s0`) makes the
//!   exponent equal the *cumulative* drift sum.
//!
//! The crate also provides the **incremental affinity index**: "as
//! affinity between users evolves over time, GRECA does not need to
//! recalculate any of the previously calculated affinities and just
//! augments the index to account for the latest affinities" (§1).
//!
//! ```
//! use greca_dataset::prelude::*;
//! use greca_affinity::{AffinityMode, PopulationAffinity, SocialAffinitySource};
//!
//! let net = SocialConfig::tiny().generate();
//! let tl = Timeline::discretize(0, net.horizon(), Granularity::Season).unwrap();
//! let source = SocialAffinitySource::new(&net);
//! let universe: Vec<UserId> = net.users().collect();
//! let pop = PopulationAffinity::build(&source, &universe, &tl);
//! let g = Group::new(vec![UserId(0), UserId(1), UserId(2)]).unwrap();
//! let view = pop.group_view(&g, tl.num_periods() - 1, AffinityMode::Discrete);
//! let aff = view.affinity(view.pair_of(UserId(0), UserId(1)).unwrap());
//! assert!(aff >= 0.0);
//! ```

pub mod group;
pub mod population;
pub mod source;

pub use group::{AffinityMode, GroupAffinity};
pub use population::{PeriodAffinityData, PopulationAffinity};
pub use source::{AffinitySource, SocialAffinitySource, TableAffinitySource};
