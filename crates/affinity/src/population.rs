//! Population-level affinity index with incremental period appends.
//!
//! Holds, for a user universe `U` and a timeline:
//!
//! * raw static affinities for all `|U|·(|U|−1)/2` pairs;
//! * per period `p'`: raw periodic affinities `affP(u,u',p')`, the
//!   population average `AvgaffP(p') = 2·Σ affP / (|U|² − |U|)` (§2.1)
//!   and the period's max (for `[0,1]` normalization, §4.1.2);
//! * running cumulative drift sums `Σ_{p'⪯p}(affP̄ − Avḡ)` per pair, so
//!   that Eq. 1 queries are O(1) and **appending a new period never
//!   recomputes old ones** — the paper's index-maintenance claim (§1).

use crate::group::{AffinityMode, GroupAffinity};
use crate::source::AffinitySource;
use greca_dataset::{Group, Period, Timeline, UserId};
use serde::{Deserialize, Serialize};

/// Per-period slice of the index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodAffinityData {
    /// The period this slice covers.
    pub period: Period,
    /// Raw `affP` per pair (triangular layout).
    pub raw: Vec<f64>,
    /// Population average of raw `affP` (the paper's `AvgaffP(p')`).
    pub avg_raw: f64,
    /// Max raw `affP` over pairs; 0 for an all-empty period.
    pub max_raw: f64,
}

impl PeriodAffinityData {
    /// Normalized periodic affinity of a pair: `affP / max` in `[0,1]`
    /// (0 when the period is empty).
    pub fn normalized(&self, pair: usize) -> f64 {
        if self.max_raw > 0.0 {
            self.raw[pair] / self.max_raw
        } else {
            0.0
        }
    }

    /// Normalized population average `AvgaffP / max`.
    pub fn normalized_avg(&self) -> f64 {
        if self.max_raw > 0.0 {
            self.avg_raw / self.max_raw
        } else {
            0.0
        }
    }

    /// Whether any pair shares a like in this period.
    pub fn is_empty_period(&self) -> bool {
        self.max_raw <= 0.0
    }
}

/// The population affinity index (see module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationAffinity {
    universe: Vec<UserId>,
    /// `universe[i]` ↔ dense index `i`; inverse map for queries.
    user_pos: Vec<Option<u32>>,
    static_raw: Vec<f64>,
    static_max: f64,
    periods: Vec<PeriodAffinityData>,
    /// `cum_drift[p][pair] = Σ_{p'≤p} (norm affP − norm Avg)`.
    cum_drift: Vec<Vec<f64>>,
}

impl PopulationAffinity {
    /// Build the index over `universe` for every period of `timeline`.
    pub fn build(
        source: &(impl AffinitySource + ?Sized),
        universe: &[UserId],
        timeline: &Timeline,
    ) -> Self {
        let mut idx = Self::new_static_only(source, universe);
        for &p in timeline.periods() {
            idx.append_period(source, p);
        }
        idx
    }

    /// Build with static affinities only; periods are appended later via
    /// [`PopulationAffinity::append_period`].
    pub fn new_static_only(source: &(impl AffinitySource + ?Sized), universe: &[UserId]) -> Self {
        let mut universe = universe.to_vec();
        universe.sort_unstable();
        universe.dedup();
        assert!(universe.len() >= 2, "affinity needs at least two users");
        let max_id = universe.last().expect("non-empty").idx();
        let mut user_pos = vec![None; max_id + 1];
        for (pos, &u) in universe.iter().enumerate() {
            user_pos[u.idx()] = Some(pos as u32);
        }
        let n = universe.len();
        let mut static_raw = Vec::with_capacity(n * (n - 1) / 2);
        let mut static_max = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                let v = source.static_raw(universe[i], universe[j]);
                debug_assert!(v >= 0.0 && v.is_finite());
                static_max = static_max.max(v);
                static_raw.push(v);
            }
        }
        PopulationAffinity {
            universe,
            user_pos,
            static_raw,
            static_max,
            periods: Vec::new(),
            cum_drift: Vec::new(),
        }
    }

    /// Append the next period's affinities.
    ///
    /// Cost is `O(|U|²)` for the new period only; previously computed
    /// periods and cumulative sums are untouched (the incremental-index
    /// property benchmarked by `ablation_incremental`).
    pub fn append_period(&mut self, source: &(impl AffinitySource + ?Sized), period: Period) {
        if let Some(last) = self.periods.last() {
            assert!(
                last.period.end <= period.start,
                "periods must be appended in chronological order"
            );
        }
        let n = self.universe.len();
        let mut raw = Vec::with_capacity(n * (n - 1) / 2);
        let mut sum = 0.0f64;
        let mut max = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                let v = source.periodic_raw(self.universe[i], self.universe[j], period);
                debug_assert!(v >= 0.0 && v.is_finite());
                sum += v;
                max = max.max(v);
                raw.push(v);
            }
        }
        let n_pairs = raw.len().max(1);
        // AvgaffP(p') = 2·Σ / (|U|²−|U|) = Σ / #pairs.
        let avg_raw = sum / n_pairs as f64;
        let data = PeriodAffinityData {
            period,
            raw,
            avg_raw,
            max_raw: max,
        };
        let avg_norm = data.normalized_avg();
        let prev = self.cum_drift.last();
        let mut cum = Vec::with_capacity(n_pairs);
        for pair in 0..data.raw.len() {
            let drift = data.normalized(pair) - avg_norm;
            let base = prev.map_or(0.0, |c| c[pair]);
            cum.push(base + drift);
        }
        self.periods.push(data);
        self.cum_drift.push(cum);
    }

    /// The (sorted, deduplicated) user universe.
    pub fn universe(&self) -> &[UserId] {
        &self.universe
    }

    /// Number of periods currently indexed.
    pub fn num_periods(&self) -> usize {
        self.periods.len()
    }

    /// Per-period data slices.
    pub fn periods(&self) -> &[PeriodAffinityData] {
        &self.periods
    }

    /// Triangular pair index of `(u, v)` within the universe.
    pub fn pair_of(&self, u: UserId, v: UserId) -> Option<usize> {
        if u == v {
            return None;
        }
        let pu = *self.user_pos.get(u.idx())?;
        let pv = *self.user_pos.get(v.idx())?;
        let (a, b) = (pu?.min(pv?) as usize, pu?.max(pv?) as usize);
        let n = self.universe.len();
        // Row-major triangular: pairs (a, b) with a < b.
        Some(a * n - a * (a + 1) / 2 + (b - a - 1))
    }

    /// Whether `u` belongs to the indexed universe (O(1)).
    pub fn contains_user(&self, u: UserId) -> bool {
        self.user_pos.get(u.idx()).is_some_and(|p| p.is_some())
    }

    /// Number of user pairs in the universe (`|U|·(|U|−1)/2`).
    pub fn num_pairs(&self) -> usize {
        self.static_raw.len()
    }

    /// Every pair index ordered by **globally normalized static
    /// affinity descending** (ties by pair index), paired with the
    /// values in that order — the population-level inverted list a
    /// serving substrate snapshots once and shares across queries.
    pub fn static_sorted_desc(&self) -> (Vec<u32>, Vec<f64>) {
        sorted_desc(self.num_pairs(), |pair| self.static_norm(pair))
    }

    /// Every pair index ordered by **normalized periodic affinity of
    /// period `p_idx` descending** (ties by pair index), with the values.
    ///
    /// Restricting this order to any subset of pairs reproduces exactly
    /// what sorting that subset's values would give (normalization is a
    /// shared positive scale), which is what lets per-group periodic
    /// lists be assembled without a float sort.
    pub fn period_sorted_desc(&self, p_idx: usize) -> (Vec<u32>, Vec<f64>) {
        let pd = &self.periods[p_idx];
        sorted_desc(self.num_pairs(), |pair| pd.normalized(pair))
    }

    /// The maximum raw static affinity over a group's pairs — the
    /// denominator of §4.1.2's per-group renormalization ("we normalize
    /// all static affinity values in a group by the maximum pair-wise
    /// value in the group").
    pub fn group_static_max(&self, group: &Group) -> f64 {
        group
            .pairs()
            .map(|(u, v)| {
                let pi = self
                    .pair_of(u, v)
                    .expect("group members must belong to the indexed universe");
                self.static_raw[pi]
            })
            .fold(0.0f64, f64::max)
    }

    /// Globally normalized static affinity in `[0,1]`.
    pub fn static_norm(&self, pair: usize) -> f64 {
        if self.static_max > 0.0 {
            self.static_raw[pair] / self.static_max
        } else {
            0.0
        }
    }

    /// Raw static affinity of a pair.
    pub fn static_raw_of(&self, pair: usize) -> f64 {
        self.static_raw[pair]
    }

    /// Cumulative normalized drift `Σ_{p'≤p}(affP̄ − Avḡ)` of a pair up
    /// to (and including) period `p_idx`.
    pub fn cumulative_drift(&self, pair: usize, p_idx: usize) -> f64 {
        self.cum_drift[p_idx][pair]
    }

    /// The paper's `affV(u,u',p)` under the **discrete** model: the
    /// cumulative drift divided by the number of periods (Eq. 1's Δ).
    pub fn aff_v_discrete(&self, pair: usize, p_idx: usize) -> f64 {
        self.cumulative_drift(pair, p_idx) / (p_idx + 1) as f64
    }

    /// Full pairwise affinity under `mode`, using globally normalized
    /// static affinity (group views re-normalize per group).
    pub fn affinity(&self, pair: usize, p_idx: usize, mode: AffinityMode) -> f64 {
        let s = self.static_norm(pair);
        match mode {
            AffinityMode::None => 0.0,
            AffinityMode::StaticOnly => s,
            AffinityMode::Discrete => (s + self.aff_v_discrete(pair, p_idx)).max(0.0),
            AffinityMode::Continuous { scale } => {
                s * (scale * self.cumulative_drift(pair, p_idx)).min(30.0).exp()
            }
        }
    }

    /// Fraction of (pair, period) cells with non-zero periodic affinity —
    /// the "percentage of non-emptiness" of Figure 4.
    pub fn non_empty_fraction(&self) -> f64 {
        let mut non_empty = 0usize;
        let mut total = 0usize;
        for p in &self.periods {
            total += p.raw.len();
            non_empty += p.raw.iter().filter(|&&v| v > 0.0).count();
        }
        if total == 0 {
            0.0
        } else {
            non_empty as f64 / total as f64
        }
    }

    /// Std-dev over periods of each pair's raw common likes, averaged over
    /// pairs — the calibration statistic of §4.1.2 (the paper reports 0.42).
    pub fn mean_pair_std_dev(&self) -> f64 {
        let n_pairs = self.static_raw.len();
        if n_pairs == 0 || self.periods.is_empty() {
            return 0.0;
        }
        let np = self.periods.len() as f64;
        let mut acc = 0.0;
        for pair in 0..n_pairs {
            let mean: f64 = self.periods.iter().map(|p| p.raw[pair]).sum::<f64>() / np;
            let var: f64 = self
                .periods
                .iter()
                .map(|p| (p.raw[pair] - mean).powi(2))
                .sum::<f64>()
                / np;
            acc += var.sqrt();
        }
        acc / n_pairs as f64
    }

    /// Materialize the per-group view needed by the consensus functions
    /// and GRECA: group-normalized static components, per-period
    /// normalized components and the constants of Eq. 1, evaluated for the
    /// query period `p_idx` (drift aggregates periods `0..=p_idx`).
    pub fn group_view(&self, group: &Group, p_idx: usize, mode: AffinityMode) -> GroupAffinity {
        assert!(
            p_idx < self.periods.len() || self.periods.is_empty(),
            "period index {p_idx} out of range ({} periods)",
            self.periods.len()
        );
        let members = group.members().to_vec();
        let pairs: Vec<(UserId, UserId)> = group.pairs().collect();
        // §4.1.2: "We normalize all static affinity values in a group by
        // the maximum pair-wise value in the group".
        let mut static_raw_vals = Vec::with_capacity(pairs.len());
        for &(u, v) in &pairs {
            let pi = self
                .pair_of(u, v)
                .expect("group members must belong to the indexed universe");
            static_raw_vals.push(self.static_raw[pi]);
        }
        let gmax = self.group_static_max(group);
        let static_comp: Vec<f64> = static_raw_vals
            .iter()
            .map(|&v| if gmax > 0.0 { v / gmax } else { 0.0 })
            .collect();
        // Non-temporal modes ignore periodic components entirely; don't
        // materialize (or later scan) them.
        let upto = if self.periods.is_empty() || !mode.is_temporal() {
            0
        } else {
            p_idx + 1
        };
        let mut period_comps = Vec::with_capacity(upto);
        let mut avgbar = Vec::with_capacity(upto);
        for pd in &self.periods[..upto] {
            let comps: Vec<f64> = pairs
                .iter()
                .map(|&(u, v)| {
                    let pi = self.pair_of(u, v).expect("indexed");
                    pd.normalized(pi)
                })
                .collect();
            period_comps.push(comps);
            avgbar.push(pd.normalized_avg());
        }
        GroupAffinity::new(members, mode, static_comp, period_comps, avgbar)
    }
}

/// Pair ids `0..n_pairs` sorted by `value_of` descending, ties by pair
/// id ascending, plus the values in that order. All affinity components
/// are finite and ≥ 0 (enforced at ingestion); `+ 0.0` collapses a
/// `-0.0` (which `v >= 0.0` admits) onto `+0.0` so `total_cmp` agrees
/// exactly with the IEEE partial order a per-group value sort uses —
/// otherwise the two zeros would order differently on the two paths.
fn sorted_desc(n_pairs: usize, value_of: impl Fn(usize) -> f64) -> (Vec<u32>, Vec<f64>) {
    let mut pairs: Vec<u32> = (0..n_pairs as u32).collect();
    pairs.sort_by(|&a, &b| {
        (value_of(b as usize) + 0.0)
            .total_cmp(&(value_of(a as usize) + 0.0))
            .then_with(|| a.cmp(&b))
    });
    let values = pairs.iter().map(|&p| value_of(p as usize)).collect();
    (pairs, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{SocialAffinitySource, TableAffinitySource};
    use greca_dataset::{Granularity, SocialConfig, Timeline};

    fn table_world() -> (TableAffinitySource, Timeline) {
        // The running example of §3.1 (Tables 2–4): three users, two
        // six-month periods.
        let mut src = TableAffinitySource::new();
        src.set_static(UserId(0), UserId(1), 1.0)
            .set_static(UserId(0), UserId(2), 0.2)
            .set_static(UserId(1), UserId(2), 0.3);
        let tl = Timeline::discretize(0, 100, Granularity::Custom(50)).unwrap();
        let (p1, p2) = (tl.periods()[0], tl.periods()[1]);
        src.set_periodic(UserId(0), UserId(1), p1.start, 0.8)
            .set_periodic(UserId(0), UserId(2), p1.start, 0.1)
            .set_periodic(UserId(1), UserId(2), p1.start, 0.2)
            .set_periodic(UserId(0), UserId(1), p2.start, 0.7)
            .set_periodic(UserId(0), UserId(2), p2.start, 0.1)
            .set_periodic(UserId(1), UserId(2), p2.start, 0.1);
        (src, tl)
    }

    fn users3() -> Vec<UserId> {
        vec![UserId(0), UserId(1), UserId(2)]
    }

    #[test]
    fn pair_indexing_is_triangular() {
        let (src, tl) = table_world();
        let pop = PopulationAffinity::build(&src, &users3(), &tl);
        assert_eq!(pop.pair_of(UserId(0), UserId(1)), Some(0));
        assert_eq!(pop.pair_of(UserId(0), UserId(2)), Some(1));
        assert_eq!(pop.pair_of(UserId(1), UserId(2)), Some(2));
        assert_eq!(pop.pair_of(UserId(1), UserId(0)), Some(0), "symmetric");
        assert_eq!(pop.pair_of(UserId(0), UserId(0)), None);
        assert_eq!(pop.pair_of(UserId(0), UserId(9)), None);
    }

    #[test]
    fn static_normalization_by_max() {
        let (src, tl) = table_world();
        let pop = PopulationAffinity::build(&src, &users3(), &tl);
        assert!((pop.static_norm(0) - 1.0).abs() < 1e-12);
        assert!((pop.static_norm(1) - 0.2).abs() < 1e-12);
        assert!((pop.static_norm(2) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn avg_aff_p_matches_paper_formula() {
        let (src, tl) = table_world();
        let pop = PopulationAffinity::build(&src, &users3(), &tl);
        // Period 1 raws: 0.8, 0.1, 0.2 → Avg = 1.1/3.
        let p0 = &pop.periods()[0];
        assert!((p0.avg_raw - 1.1 / 3.0).abs() < 1e-12);
        assert!((p0.max_raw - 0.8).abs() < 1e-12);
    }

    #[test]
    fn drift_sign_tracks_population() {
        let (src, tl) = table_world();
        let pop = PopulationAffinity::build(&src, &users3(), &tl);
        // Pair (u0,u1) is above average in both periods → positive drift;
        // (u0,u2) below average → negative drift.
        assert!(pop.cumulative_drift(0, 1) > 0.0);
        assert!(pop.cumulative_drift(1, 1) < 0.0);
        // Discrete affV averages over the 2 periods.
        assert!((pop.aff_v_discrete(0, 1) - pop.cumulative_drift(0, 1) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn tables_3_and_4_show_decreasing_affinity_for_u1u2() {
        // The paper notes "the temporal affinity of users u1 and u2 has
        // decreased between periods p1 and p2" — the per-period drift of
        // the pair must shrink.
        let (src, tl) = table_world();
        let pop = PopulationAffinity::build(&src, &users3(), &tl);
        // Raw list values: 0.8 in p1 vs 0.7 in p2.
        assert!(pop.periods()[0].raw[0] > pop.periods()[1].raw[0]);
        // Raw drift against the population average also shrinks:
        // p1: 0.8 − 1.1/3 ≈ 0.433;  p2: 0.7 − 0.9/3 = 0.4.
        let raw_drift = |p: usize| pop.periods()[p].raw[0] - pop.periods()[p].avg_raw;
        assert!(raw_drift(1) < raw_drift(0));
    }

    #[test]
    fn incremental_append_equals_batch_build() {
        let net = SocialConfig::tiny().generate();
        let src = SocialAffinitySource::new(&net);
        let tl = Timeline::discretize(0, net.horizon(), Granularity::TwoMonth).unwrap();
        let universe: Vec<UserId> = net.users().collect();
        let batch = PopulationAffinity::build(&src, &universe, &tl);
        let mut inc = PopulationAffinity::new_static_only(&src, &universe);
        for &p in tl.periods() {
            inc.append_period(&src, p);
        }
        assert_eq!(batch, inc);
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn append_rejects_out_of_order_periods() {
        let (src, tl) = table_world();
        let mut pop = PopulationAffinity::new_static_only(&src, &users3());
        pop.append_period(&src, tl.periods()[1]);
        pop.append_period(&src, tl.periods()[0]);
    }

    #[test]
    fn affinity_modes_behave() {
        let (src, tl) = table_world();
        let pop = PopulationAffinity::build(&src, &users3(), &tl);
        let p = 1;
        assert_eq!(pop.affinity(0, p, AffinityMode::None), 0.0);
        assert!((pop.affinity(0, p, AffinityMode::StaticOnly) - 1.0).abs() < 1e-12);
        let d = pop.affinity(0, p, AffinityMode::Discrete);
        assert!(d > 1.0, "positive drift should lift the discrete affinity");
        let c = pop.affinity(0, p, AffinityMode::Continuous { scale: 1.0 });
        assert!(c > 1.0, "positive drift grows the continuous affinity");
        // Negative-drift pair: continuous decays below its static value.
        let c2 = pop.affinity(1, p, AffinityMode::Continuous { scale: 1.0 });
        assert!(c2 < pop.static_norm(1));
        // Discrete clamps at 0.
        assert!(pop.affinity(1, p, AffinityMode::Discrete) >= 0.0);
    }

    #[test]
    fn empty_periods_contribute_zero_drift() {
        let mut src = TableAffinitySource::new();
        src.set_static(UserId(0), UserId(1), 1.0);
        let tl = Timeline::discretize(0, 100, Granularity::Custom(50)).unwrap();
        let pop = PopulationAffinity::build(&src, &users3(), &tl);
        assert!(pop.periods()[0].is_empty_period());
        assert_eq!(pop.cumulative_drift(0, 1), 0.0);
        assert_eq!(pop.non_empty_fraction(), 0.0);
    }

    #[test]
    fn non_empty_fraction_counts_cells() {
        let (src, tl) = table_world();
        let pop = PopulationAffinity::build(&src, &users3(), &tl);
        assert!((pop.non_empty_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_pair_std_dev_known_value() {
        let (src, tl) = table_world();
        let pop = PopulationAffinity::build(&src, &users3(), &tl);
        // Pair drifts: (0.8,0.7) → sd 0.05; (0.1,0.1) → 0; (0.2,0.1) → 0.05.
        let want = (0.05 + 0.0 + 0.05) / 3.0;
        assert!((pop.mean_pair_std_dev() - want).abs() < 1e-12);
    }

    #[test]
    fn sorted_pair_arrays_are_descending_and_complete() {
        let (src, tl) = table_world();
        let pop = PopulationAffinity::build(&src, &users3(), &tl);
        let (pairs, values) = pop.static_sorted_desc();
        // Static norms: pair 0 → 1.0, pair 1 → 0.2, pair 2 → 0.3.
        assert_eq!(pairs, vec![0, 2, 1]);
        assert!((values[0] - 1.0).abs() < 1e-12);
        for p_idx in 0..pop.num_periods() {
            let (pairs, values) = pop.period_sorted_desc(p_idx);
            assert_eq!(pairs.len(), pop.num_pairs());
            for w in values.windows(2) {
                assert!(w[0] >= w[1], "period {p_idx} not descending");
            }
            for (i, &pair) in pairs.iter().enumerate() {
                assert!((pop.periods()[p_idx].normalized(pair as usize) - values[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sorted_pair_arrays_treat_signed_zeros_as_ties() {
        // `v >= 0.0` admits -0.0, which normalizes to -0.0; the sorted
        // order must still tie-break ±0.0 by pair id (as a value sort
        // with partial_cmp would), not by sign bit.
        let mut src = TableAffinitySource::new();
        src.set_static(UserId(0), UserId(1), 1.0)
            .set_static(UserId(0), UserId(2), 1.0)
            .set_static(UserId(1), UserId(2), 1.0);
        let tl = Timeline::discretize(0, 100, Granularity::Custom(100)).unwrap();
        let start = tl.periods()[0].start;
        src.set_periodic(UserId(0), UserId(1), start, -0.0)
            .set_periodic(UserId(0), UserId(2), start, 1.0)
            .set_periodic(UserId(1), UserId(2), start, 0.0);
        let pop = PopulationAffinity::build(&src, &users3(), &tl);
        let (pairs, _) = pop.period_sorted_desc(0);
        // Pair 1 carries 1.0; pairs 0 (-0.0) and 2 (+0.0) are equal and
        // must order by ascending pair id.
        assert_eq!(pairs, vec![1, 0, 2]);
    }

    #[test]
    fn universe_dedup_and_sort() {
        let (src, _tl) = table_world();
        let pop = PopulationAffinity::new_static_only(
            &src,
            &[UserId(2), UserId(0), UserId(2), UserId(1)],
        );
        assert_eq!(pop.universe(), &[UserId(0), UserId(1), UserId(2)]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn singleton_universe_rejected() {
        let src = TableAffinitySource::new();
        let _ = PopulationAffinity::new_static_only(&src, &[UserId(0)]);
    }
}
