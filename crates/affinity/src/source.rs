//! Raw affinity sources.
//!
//! The affinity machinery is "orthogonal to how affinities are modeled"
//! (§2.3): the paper derives `affS` from Facebook friendship and `affP`
//! from common page-category likes, but explicitly allows other signals
//! (shared political interests, NEO-FFI personality, expertise …).
//! [`AffinitySource`] is that extension point; [`SocialAffinitySource`]
//! implements the paper's choices over the simulated social network and
//! [`TableAffinitySource`] holds hand-written values (used to encode the
//! running example of §3.1, Tables 2–4).

use greca_dataset::{Period, SocialNetwork, UserId};
use std::collections::HashMap;

/// A provider of raw (unnormalized) pairwise affinity signals.
///
/// Both signals must be symmetric (`f(u,v) = f(v,u)`), finite and
/// non-negative; callers normalize.
pub trait AffinitySource {
    /// Raw static affinity — the paper's `|friends(u) ∩ friends(u')|`.
    fn static_raw(&self, u: UserId, v: UserId) -> f64;

    /// Raw periodic affinity for one period — the paper's
    /// `|page_likes(u,p) ∩ page_likes(u',p)|`.
    fn periodic_raw(&self, u: UserId, v: UserId, period: Period) -> f64;
}

/// The paper's Facebook-derived signals over the simulated social network.
#[derive(Debug, Clone)]
pub struct SocialAffinitySource<'a> {
    net: &'a SocialNetwork,
}

impl<'a> SocialAffinitySource<'a> {
    /// Wrap a social network.
    pub fn new(net: &'a SocialNetwork) -> Self {
        SocialAffinitySource { net }
    }

    /// The wrapped network.
    pub fn network(&self) -> &SocialNetwork {
        self.net
    }
}

impl AffinitySource for SocialAffinitySource<'_> {
    fn static_raw(&self, u: UserId, v: UserId) -> f64 {
        self.net.common_friends(u, v) as f64
    }

    fn periodic_raw(&self, u: UserId, v: UserId, period: Period) -> f64 {
        self.net.common_category_likes(u, v, period) as f64
    }
}

/// Hand-specified affinity tables keyed by (min id, max id) and period
/// start timestamp; missing entries default to 0.
#[derive(Debug, Clone, Default)]
pub struct TableAffinitySource {
    static_vals: HashMap<(u32, u32), f64>,
    periodic_vals: HashMap<(u32, u32, i64), f64>,
}

impl TableAffinitySource {
    /// Empty table (all affinities 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a symmetric static affinity value.
    pub fn set_static(&mut self, u: UserId, v: UserId, value: f64) -> &mut Self {
        assert!(value >= 0.0 && value.is_finite(), "affinity must be ≥ 0");
        self.static_vals.insert(key(u, v), value);
        self
    }

    /// Set a symmetric periodic affinity value for the period starting at
    /// `period_start`.
    pub fn set_periodic(
        &mut self,
        u: UserId,
        v: UserId,
        period_start: i64,
        value: f64,
    ) -> &mut Self {
        assert!(value >= 0.0 && value.is_finite(), "affinity must be ≥ 0");
        let (a, b) = key(u, v);
        self.periodic_vals.insert((a, b, period_start), value);
        self
    }
}

fn key(u: UserId, v: UserId) -> (u32, u32) {
    (u.0.min(v.0), u.0.max(v.0))
}

impl AffinitySource for TableAffinitySource {
    fn static_raw(&self, u: UserId, v: UserId) -> f64 {
        *self.static_vals.get(&key(u, v)).unwrap_or(&0.0)
    }

    fn periodic_raw(&self, u: UserId, v: UserId, period: Period) -> f64 {
        let (a, b) = key(u, v);
        *self
            .periodic_vals
            .get(&(a, b, period.start))
            .unwrap_or(&0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greca_dataset::SocialConfig;

    #[test]
    fn social_source_is_symmetric() {
        let net = SocialConfig::tiny().generate();
        let src = SocialAffinitySource::new(&net);
        let p = Period::new(0, net.horizon()).unwrap();
        for u in net.users() {
            for v in net.users() {
                assert_eq!(src.static_raw(u, v), src.static_raw(v, u));
                assert_eq!(src.periodic_raw(u, v, p), src.periodic_raw(v, u, p));
            }
        }
    }

    #[test]
    fn table_source_defaults_to_zero() {
        let src = TableAffinitySource::new();
        let p = Period::new(0, 10).unwrap();
        assert_eq!(src.static_raw(UserId(0), UserId(1)), 0.0);
        assert_eq!(src.periodic_raw(UserId(0), UserId(1), p), 0.0);
    }

    #[test]
    fn table_source_stores_symmetrically() {
        let mut src = TableAffinitySource::new();
        src.set_static(UserId(2), UserId(1), 0.7);
        src.set_periodic(UserId(1), UserId(2), 0, 0.3);
        let p = Period::new(0, 10).unwrap();
        assert_eq!(src.static_raw(UserId(1), UserId(2)), 0.7);
        assert_eq!(src.static_raw(UserId(2), UserId(1)), 0.7);
        assert_eq!(src.periodic_raw(UserId(2), UserId(1), p), 0.3);
    }

    #[test]
    #[should_panic(expected = "affinity must be ≥ 0")]
    fn negative_static_rejected() {
        TableAffinitySource::new().set_static(UserId(0), UserId(1), -1.0);
    }
}
