//! Property tests for the temporal affinity model (§2.1 invariants).

use greca_affinity::{AffinityMode, PopulationAffinity, TableAffinitySource};
use greca_dataset::{Granularity, Group, Timeline, UserId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct AffWorld {
    n: usize,
    periods: usize,
    static_raw: Vec<f64>,
    periodic_raw: Vec<Vec<f64>>,
}

fn world_strategy() -> impl Strategy<Value = AffWorld> {
    (2usize..=5, 1usize..=4).prop_flat_map(|(n, periods)| {
        let pairs = n * (n - 1) / 2;
        (
            Just(n),
            Just(periods),
            proptest::collection::vec(0.0f64..10.0, pairs),
            proptest::collection::vec(proptest::collection::vec(0.0f64..8.0, pairs), periods),
        )
            .prop_map(|(n, periods, static_raw, periodic_raw)| AffWorld {
                n,
                periods,
                static_raw,
                periodic_raw,
            })
    })
}

fn build(w: &AffWorld) -> (PopulationAffinity, Vec<UserId>, Timeline) {
    let users: Vec<UserId> = (0..w.n as u32).map(UserId).collect();
    let tl = Timeline::discretize(0, w.periods as i64 * 10, Granularity::Custom(10)).unwrap();
    let mut src = TableAffinitySource::new();
    let mut pair = 0;
    for i in 0..w.n {
        for j in (i + 1)..w.n {
            src.set_static(users[i], users[j], w.static_raw[pair]);
            pair += 1;
        }
    }
    for (p, pdata) in w.periodic_raw.iter().enumerate() {
        let start = tl.periods()[p].start;
        let mut pr = 0;
        for i in 0..w.n {
            for j in (i + 1)..w.n {
                src.set_periodic(users[i], users[j], start, pdata[pr]);
                pr += 1;
            }
        }
    }
    (PopulationAffinity::build(&src, &users, &tl), users, tl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Affinity is symmetric under every mode (the paper assumes
    /// aff(u,u') = aff(u',u)).
    #[test]
    fn affinity_is_symmetric(w in world_strategy()) {
        let (pop, users, _tl) = build(&w);
        let last = w.periods - 1;
        for mode in [AffinityMode::StaticOnly, AffinityMode::Discrete, AffinityMode::continuous()] {
            for (i, &a) in users.iter().enumerate() {
                for &b in &users[i + 1..] {
                    let p1 = pop.pair_of(a, b).unwrap();
                    let p2 = pop.pair_of(b, a).unwrap();
                    prop_assert_eq!(p1, p2);
                    let v = pop.affinity(p1, last, mode);
                    prop_assert!(v.is_finite() && v >= 0.0, "{mode:?}: {v}");
                }
            }
        }
    }

    /// Normalized components and the population average live in [0, 1].
    #[test]
    fn normalization_bounds(w in world_strategy()) {
        let (pop, _users, _tl) = build(&w);
        for pd in pop.periods() {
            prop_assert!((0.0..=1.0).contains(&pd.normalized_avg()));
            for pair in 0..w.static_raw.len() {
                prop_assert!((0.0..=1.0).contains(&pd.normalized(pair)));
            }
        }
        for pair in 0..w.static_raw.len() {
            prop_assert!((0.0..=1.0).contains(&pop.static_norm(pair)));
        }
    }

    /// Eq. 1: drifts sum to ~0 across the population within each period
    /// (each pair is compared against the population mean).
    #[test]
    fn per_period_drift_is_centered(w in world_strategy()) {
        let (pop, _users, _tl) = build(&w);
        for p in 0..w.periods {
            let total: f64 = (0..w.static_raw.len())
                .map(|pair| {
                    let prev = if p == 0 { 0.0 } else { pop.cumulative_drift(pair, p - 1) };
                    pop.cumulative_drift(pair, p) - prev
                })
                .sum();
            prop_assert!(total.abs() < 1e-9, "period {p} drift sum {total}");
        }
    }

    /// The group view's affinity equals the population model's semantics
    /// up to the group-level static renormalization: with a single pair
    /// (n = 2) the group static component is 1 whenever the pair has any
    /// static affinity.
    #[test]
    fn group_view_consistent(w in world_strategy()) {
        let (pop, users, _tl) = build(&w);
        let last = w.periods - 1;
        let group = Group::new(users.clone()).unwrap();
        let view = pop.group_view(&group, last, AffinityMode::Discrete);
        prop_assert_eq!(view.num_pairs(), w.static_raw.len());
        prop_assert_eq!(view.num_periods(), w.periods);
        for pair in 0..view.num_pairs() {
            let a = view.affinity(pair);
            prop_assert!(a.is_finite() && a >= 0.0);
            prop_assert!(a <= view.affinity_cap() + 1e-9);
        }
    }

    /// Appending periods never changes earlier periods' data (the
    /// incremental-index contract).
    #[test]
    fn append_is_monotone_history(w in world_strategy()) {
        let users: Vec<UserId> = (0..w.n as u32).map(UserId).collect();
        let tl = Timeline::discretize(0, w.periods as i64 * 10, Granularity::Custom(10)).unwrap();
        let mut src = TableAffinitySource::new();
        let mut pair = 0;
        for i in 0..w.n {
            for j in (i + 1)..w.n {
                src.set_static(users[i], users[j], w.static_raw[pair]);
                pair += 1;
            }
        }
        for (p, pdata) in w.periodic_raw.iter().enumerate() {
            let start = tl.periods()[p].start;
            let mut pr = 0;
            for i in 0..w.n {
                for j in (i + 1)..w.n {
                    src.set_periodic(users[i], users[j], start, pdata[pr]);
                    pr += 1;
                }
            }
        }
        let mut inc = PopulationAffinity::new_static_only(&src, &users);
        let mut snapshots: Vec<Vec<f64>> = Vec::new();
        for &period in tl.periods() {
            inc.append_period(&src, period);
            // Every previously recorded cumulative drift must be intact.
            for (p_idx, snap) in snapshots.iter().enumerate() {
                for (pair, &v) in snap.iter().enumerate() {
                    prop_assert_eq!(inc.cumulative_drift(pair, p_idx), v);
                }
            }
            let latest = inc.num_periods() - 1;
            snapshots.push(
                (0..w.static_raw.len())
                    .map(|pair| inc.cumulative_drift(pair, latest))
                    .collect(),
            );
        }
    }
}
