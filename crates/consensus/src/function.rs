//! Group consensus functions (§2.3).
//!
//! The paper evaluates four configurations, which we reproduce exactly:
//!
//! | name   | group preference | disagreement      | weights        |
//! |--------|------------------|-------------------|----------------|
//! | AP/AR  | average          | —                 | `w1 = 1`       |
//! | MO     | least-misery     | —                 | `w1 = 1`       |
//! | PD V1  | average          | average pairwise  | `w1 = 0.8`     |
//! | PD V2  | average          | average pairwise  | `w1 = 0.2`     |
//!
//! plus the variance-based disagreement variant. `F = w1·gpref +
//! w2·(1−dis)` follows the paper verbatim; `dis` is not rescaled (the
//! paper's running example also "ignores normalization").

use serde::{Deserialize, Serialize};

/// The group-preference aggregation (first consensus aspect, §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupPreferenceKind {
    /// `gpref = (1/|G|)·Σ pref(u,i,G,p)`.
    Average,
    /// `gpref = min_u pref(u,i,G,p)`.
    LeastMisery,
}

/// The disagreement measure (second consensus aspect, §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DisagreementKind {
    /// No disagreement term (`dis = 0`, so `F = w1·gpref + w2`).
    NoDisagreement,
    /// `dis = (2/(|G|(|G|−1)))·Σ_{u≠v} |pref_u − pref_v|`.
    AveragePairwise,
    /// `dis = (1/|G|)·Σ (pref_u − mean)²`.
    Variance,
}

/// A fully-specified consensus function `F(G, i, p)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsensusFunction {
    /// Group-preference aggregation.
    pub preference: GroupPreferenceKind,
    /// Disagreement measure.
    pub disagreement: DisagreementKind,
    /// Weight of the preference term; the disagreement term gets `1 − w1`.
    pub w1: f64,
}

impl ConsensusFunction {
    /// AP — the paper's default ("Average Preference").
    pub fn average_preference() -> Self {
        ConsensusFunction {
            preference: GroupPreferenceKind::Average,
            disagreement: DisagreementKind::NoDisagreement,
            w1: 1.0,
        }
    }

    /// MO — "Least-Misery Only".
    pub fn least_misery() -> Self {
        ConsensusFunction {
            preference: GroupPreferenceKind::LeastMisery,
            disagreement: DisagreementKind::NoDisagreement,
            w1: 1.0,
        }
    }

    /// PD — "Pair-wise Disagreement" with the given preference weight
    /// (`w1 = 0.8` is the paper's PD V1, `w1 = 0.2` its PD V2, §4.2.5).
    pub fn pairwise_disagreement(w1: f64) -> Self {
        assert!((0.0..=1.0).contains(&w1), "w1 must be in [0,1]");
        ConsensusFunction {
            preference: GroupPreferenceKind::Average,
            disagreement: DisagreementKind::AveragePairwise,
            w1,
        }
    }

    /// Variance-disagreement variant (§2.3's second `dis` definition).
    pub fn variance_disagreement(w1: f64) -> Self {
        assert!((0.0..=1.0).contains(&w1), "w1 must be in [0,1]");
        ConsensusFunction {
            preference: GroupPreferenceKind::Average,
            disagreement: DisagreementKind::Variance,
            w1,
        }
    }

    /// Weight of the disagreement term (`w2 = 1 − w1`).
    pub fn w2(&self) -> f64 {
        1.0 - self.w1
    }

    /// Short label matching the paper's figures.
    pub fn label(&self) -> String {
        match (self.preference, self.disagreement) {
            (GroupPreferenceKind::Average, DisagreementKind::NoDisagreement) => "AP".into(),
            (GroupPreferenceKind::LeastMisery, DisagreementKind::NoDisagreement) => "MO".into(),
            (GroupPreferenceKind::Average, DisagreementKind::AveragePairwise) => {
                format!("PD(w1={})", self.w1)
            }
            (GroupPreferenceKind::Average, DisagreementKind::Variance) => {
                format!("VD(w1={})", self.w1)
            }
            (p, d) => format!("{p:?}+{d:?}(w1={})", self.w1),
        }
    }

    /// The group-preference term over member preferences.
    pub fn group_preference(&self, prefs: &[f64]) -> f64 {
        assert!(!prefs.is_empty(), "group preference needs members");
        match self.preference {
            GroupPreferenceKind::Average => prefs.iter().sum::<f64>() / prefs.len() as f64,
            GroupPreferenceKind::LeastMisery => prefs.iter().cloned().fold(f64::INFINITY, f64::min),
        }
    }

    /// The disagreement term over member preferences.
    pub fn disagreement(&self, prefs: &[f64]) -> f64 {
        let n = prefs.len();
        match self.disagreement {
            DisagreementKind::NoDisagreement => 0.0,
            DisagreementKind::AveragePairwise => {
                if n < 2 {
                    return 0.0;
                }
                let mut sum = 0.0;
                for i in 0..n {
                    for j in (i + 1)..n {
                        sum += (prefs[i] - prefs[j]).abs();
                    }
                }
                2.0 * sum / (n as f64 * (n as f64 - 1.0))
            }
            DisagreementKind::Variance => {
                if n == 0 {
                    return 0.0;
                }
                let mean = prefs.iter().sum::<f64>() / n as f64;
                prefs.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / n as f64
            }
        }
    }

    /// The full consensus score `F = w1·gpref + w2·(1 − dis)`.
    pub fn score(&self, prefs: &[f64]) -> f64 {
        self.w1 * self.group_preference(prefs) + self.w2() * (1.0 - self.disagreement(prefs))
    }

    /// The four configurations benchmarked in Figure 8
    /// (AR = AP, MO, PD V1 `w1=0.8`, PD V2 `w1=0.2`).
    pub fn figure8_sweep() -> [ConsensusFunction; 4] {
        [
            ConsensusFunction::average_preference(),
            ConsensusFunction::least_misery(),
            ConsensusFunction::pairwise_disagreement(0.8),
            ConsensusFunction::pairwise_disagreement(0.2),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_preference_is_mean() {
        let f = ConsensusFunction::average_preference();
        assert_eq!(f.score(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(f.group_preference(&[4.0]), 4.0);
    }

    #[test]
    fn least_misery_is_min() {
        let f = ConsensusFunction::least_misery();
        assert_eq!(f.score(&[1.0, 2.0, 3.0]), 1.0);
    }

    #[test]
    fn pairwise_disagreement_known_value() {
        // prefs (1, 3, 5): pairwise diffs 2, 4, 2 → sum 8;
        // dis = 2·8/(3·2) = 8/3.
        let f = ConsensusFunction::pairwise_disagreement(0.5);
        let dis = f.disagreement(&[1.0, 3.0, 5.0]);
        assert!((dis - 8.0 / 3.0).abs() < 1e-12);
        let want = 0.5 * 3.0 + 0.5 * (1.0 - 8.0 / 3.0);
        assert!((f.score(&[1.0, 3.0, 5.0]) - want).abs() < 1e-12);
    }

    #[test]
    fn variance_disagreement_known_value() {
        let f = ConsensusFunction::variance_disagreement(0.0);
        // prefs (1, 3): mean 2, var = 1.
        assert!((f.disagreement(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((f.score(&[1.0, 3.0]) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn singleton_group_has_no_disagreement() {
        for f in [
            ConsensusFunction::pairwise_disagreement(0.5),
            ConsensusFunction::variance_disagreement(0.5),
        ] {
            assert_eq!(f.disagreement(&[3.0]), 0.0);
        }
    }

    #[test]
    fn unanimous_groups_maximize_pd_score() {
        // With equal preferences, dis = 0, so PD reduces to
        // w1·pref + w2 — higher than any same-mean disagreeing profile.
        let f = ConsensusFunction::pairwise_disagreement(0.5);
        let agree = f.score(&[3.0, 3.0, 3.0]);
        let disagree = f.score(&[2.0, 3.0, 4.0]);
        assert!(agree > disagree);
    }

    #[test]
    fn w2_complements_w1() {
        let f = ConsensusFunction::pairwise_disagreement(0.8);
        assert!((f.w1 + f.w2() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(ConsensusFunction::average_preference().label(), "AP");
        assert_eq!(ConsensusFunction::least_misery().label(), "MO");
        assert_eq!(
            ConsensusFunction::pairwise_disagreement(0.8).label(),
            "PD(w1=0.8)"
        );
    }

    #[test]
    fn figure8_sweep_order() {
        let fs = ConsensusFunction::figure8_sweep();
        assert_eq!(fs[0].label(), "AP");
        assert_eq!(fs[1].label(), "MO");
        assert_eq!(fs[2].w1, 0.8);
        assert_eq!(fs[3].w1, 0.2);
    }

    #[test]
    #[should_panic(expected = "w1 must be in [0,1]")]
    fn invalid_weight_rejected() {
        ConsensusFunction::pairwise_disagreement(1.5);
    }

    #[test]
    fn monotone_for_average_and_misery() {
        // Lemma 1's base case: AP and MO are monotone in each member
        // preference.
        let ap = ConsensusFunction::average_preference();
        let mo = ConsensusFunction::least_misery();
        let base = [2.0, 3.0, 1.0];
        for f in [ap, mo] {
            for i in 0..3 {
                let mut up = base;
                up[i] += 0.5;
                assert!(f.score(&up) >= f.score(&base), "{} at {i}", f.label());
            }
        }
    }
}
