//! # greca-consensus
//!
//! Preference and group-consensus semantics (§2.2–§2.3 of the paper).
//!
//! * **Relative preference** injects affinities into individual
//!   preferences: `rpref(u,i,G,p) = Σ_{u'≠u∈G} aff(u,u',p)·apref(u',i)`
//!   and `pref(u,i,G,p) = apref(u,i) + rpref(u,i,G,p)`.
//! * **Group preference** aggregates member preferences: *average* or
//!   *least-misery*.
//! * **Group disagreement** measures dissent: *average pairwise* or
//!   *variance*.
//! * The **consensus function** combines both:
//!   `F(G,i,p) = w1·gpref(G,i,p) + w2·(1 − dis(G,i,p))`, `w1 + w2 = 1`.
//!
//! The crate computes exact scalar scores; `greca-core` mirrors the same
//! formulas over intervals for GRECA's bound computation, and a property
//! test pins the two implementations together.

pub mod function;
pub mod scorer;

pub use function::{ConsensusFunction, DisagreementKind, GroupPreferenceKind};
pub use scorer::GroupScorer;
