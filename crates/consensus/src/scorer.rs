//! Exact group scoring: relative preference + consensus (§2.2–§2.3).
//!
//! [`GroupScorer`] binds a [`GroupAffinity`] view to a
//! [`ConsensusFunction`] and evaluates items from their members' absolute
//! preferences. This is the reference ("compute the complete score")
//! implementation used by the naive baseline, the evaluation harness, and
//! the property tests that validate GRECA's bounded computation.

use greca_affinity::GroupAffinity;
use greca_dataset::UserId;
use serde::{Deserialize, Serialize};

pub use crate::function::ConsensusFunction;

/// Exact scorer for one group at one query period.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupScorer {
    affinity: GroupAffinity,
    consensus: ConsensusFunction,
    normalize_rpref: bool,
}

impl GroupScorer {
    /// Create a scorer. `normalize_rpref` divides the relative-preference
    /// sum by `|G|−1` so `pref` stays on the rating scale regardless of
    /// group size (the paper's example "ignores normalization and final
    /// averaging"; set `false` to match its raw arithmetic).
    pub fn new(
        affinity: GroupAffinity,
        consensus: ConsensusFunction,
        normalize_rpref: bool,
    ) -> Self {
        GroupScorer {
            affinity,
            consensus,
            normalize_rpref,
        }
    }

    /// The affinity view.
    pub fn affinity(&self) -> &GroupAffinity {
        &self.affinity
    }

    /// The consensus function.
    pub fn consensus(&self) -> ConsensusFunction {
        self.consensus
    }

    /// Whether relative preference is normalized by `|G|−1`.
    pub fn normalizes_rpref(&self) -> bool {
        self.normalize_rpref
    }

    /// Group members.
    pub fn members(&self) -> &[UserId] {
        self.affinity.members()
    }

    /// `rpref(u,i,G,p) = Σ_{u'≠u} aff(u,u',p)·apref(u',i)` for the member
    /// at index `idx`; `aprefs` holds the members' absolute preferences in
    /// member order.
    pub fn relative_preference(&self, idx: usize, aprefs: &[f64]) -> f64 {
        let members = self.affinity.members();
        debug_assert_eq!(aprefs.len(), members.len());
        let u = members[idx];
        let mut sum = 0.0;
        for (jdx, &v) in members.iter().enumerate() {
            if jdx == idx {
                continue;
            }
            sum += self.affinity.affinity_between(u, v) * aprefs[jdx];
        }
        if self.normalize_rpref && members.len() > 1 {
            sum / (members.len() - 1) as f64
        } else {
            sum
        }
    }

    /// `pref(u,i,G,p) = apref(u,i) + rpref(u,i,G,p)` for every member.
    pub fn member_preferences(&self, aprefs: &[f64]) -> Vec<f64> {
        (0..self.affinity.members().len())
            .map(|idx| aprefs[idx] + self.relative_preference(idx, aprefs))
            .collect()
    }

    /// The consensus score `F(G, i, p)` of an item from its members'
    /// absolute preferences.
    pub fn score(&self, aprefs: &[f64]) -> f64 {
        self.consensus.score(&self.member_preferences(aprefs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greca_affinity::{AffinityMode, GroupAffinity};

    fn two_user_view(mode: AffinityMode) -> GroupAffinity {
        GroupAffinity::new(vec![UserId(0), UserId(1)], mode, vec![0.5], vec![], vec![])
    }

    #[test]
    fn rpref_uses_other_members_only() {
        let scorer = GroupScorer::new(
            two_user_view(AffinityMode::StaticOnly),
            ConsensusFunction::average_preference(),
            false,
        );
        // aprefs: u0 → 4, u1 → 2. rpref(u0) = 0.5·2 = 1; rpref(u1) = 0.5·4 = 2.
        assert_eq!(scorer.relative_preference(0, &[4.0, 2.0]), 1.0);
        assert_eq!(scorer.relative_preference(1, &[4.0, 2.0]), 2.0);
        let prefs = scorer.member_preferences(&[4.0, 2.0]);
        assert_eq!(prefs, vec![5.0, 4.0]);
    }

    #[test]
    fn affinity_agnostic_reduces_to_apref() {
        let scorer = GroupScorer::new(
            two_user_view(AffinityMode::None),
            ConsensusFunction::average_preference(),
            true,
        );
        let prefs = scorer.member_preferences(&[4.0, 2.0]);
        assert_eq!(prefs, vec![4.0, 2.0]);
        assert_eq!(scorer.score(&[4.0, 2.0]), 3.0);
    }

    #[test]
    fn normalization_divides_by_group_size_minus_one() {
        let view = GroupAffinity::new(
            vec![UserId(0), UserId(1), UserId(2)],
            AffinityMode::StaticOnly,
            vec![1.0, 1.0, 1.0],
            vec![],
            vec![],
        );
        let raw = GroupScorer::new(view.clone(), ConsensusFunction::average_preference(), false);
        let norm = GroupScorer::new(view, ConsensusFunction::average_preference(), true);
        let aprefs = [3.0, 3.0, 3.0];
        assert_eq!(raw.relative_preference(0, &aprefs), 6.0);
        assert_eq!(norm.relative_preference(0, &aprefs), 3.0);
    }

    #[test]
    fn higher_affinity_with_a_fan_raises_everyones_preference() {
        // §3's monotonicity intuition: "if both users like i highly,
        // higher affinity between them only improves i's overall
        // preference".
        let low = GroupScorer::new(
            GroupAffinity::new(
                vec![UserId(0), UserId(1)],
                AffinityMode::StaticOnly,
                vec![0.1],
                vec![],
                vec![],
            ),
            ConsensusFunction::average_preference(),
            true,
        );
        let high = GroupScorer::new(
            GroupAffinity::new(
                vec![UserId(0), UserId(1)],
                AffinityMode::StaticOnly,
                vec![0.9],
                vec![],
                vec![],
            ),
            ConsensusFunction::average_preference(),
            true,
        );
        let aprefs = [5.0, 5.0];
        assert!(high.score(&aprefs) > low.score(&aprefs));
    }

    #[test]
    fn same_user_different_groups_scores_differently() {
        // The paper's core conjecture: the same user appreciates the same
        // item differently in different company.
        let with_fan = GroupScorer::new(
            GroupAffinity::new(
                vec![UserId(0), UserId(1)],
                AffinityMode::StaticOnly,
                vec![0.8],
                vec![],
                vec![],
            ),
            ConsensusFunction::average_preference(),
            true,
        );
        let with_hater = with_fan.clone();
        // Same affinity structure, but the companion's apref differs.
        let pref_with_fan = with_fan.member_preferences(&[3.0, 5.0])[0];
        let pref_with_hater = with_hater.member_preferences(&[3.0, 0.5])[0];
        assert!(pref_with_fan > pref_with_hater);
    }

    #[test]
    fn score_matches_manual_composition() {
        let scorer = GroupScorer::new(
            two_user_view(AffinityMode::StaticOnly),
            ConsensusFunction::pairwise_disagreement(0.8),
            false,
        );
        let aprefs = [4.0, 2.0];
        let prefs = scorer.member_preferences(&aprefs);
        let f = scorer.consensus();
        let want = 0.8 * f.group_preference(&prefs) + 0.2 * (1.0 - f.disagreement(&prefs));
        assert!((scorer.score(&aprefs) - want).abs() < 1e-12);
    }
}
