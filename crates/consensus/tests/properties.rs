//! Property tests for the consensus semantics (§2.2–§2.3 invariants).

use greca_affinity::{AffinityMode, GroupAffinity};
use greca_consensus::{ConsensusFunction, GroupScorer};
use greca_dataset::UserId;
use proptest::prelude::*;

fn consensus_strategy() -> impl Strategy<Value = ConsensusFunction> {
    (0u8..5).prop_map(|s| match s {
        0 => ConsensusFunction::average_preference(),
        1 => ConsensusFunction::least_misery(),
        2 => ConsensusFunction::pairwise_disagreement(0.8),
        3 => ConsensusFunction::pairwise_disagreement(0.2),
        _ => ConsensusFunction::variance_disagreement(0.5),
    })
}

fn scorer_strategy() -> impl Strategy<Value = (GroupScorer, Vec<f64>)> {
    (2usize..=5).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        (
            proptest::collection::vec(0.0f64..1.0, pairs),
            proptest::collection::vec(0.0f64..5.0, n),
            consensus_strategy(),
            any::<bool>(),
        )
            .prop_map(move |(static_comp, aprefs, consensus, normalize)| {
                let members: Vec<UserId> = (0..n as u32).map(UserId).collect();
                let view = GroupAffinity::new(
                    members,
                    AffinityMode::StaticOnly,
                    static_comp,
                    vec![],
                    vec![],
                );
                (GroupScorer::new(view, consensus, normalize), aprefs)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Scores are always finite for finite inputs.
    #[test]
    fn scores_are_finite((scorer, aprefs) in scorer_strategy()) {
        let s = scorer.score(&aprefs);
        prop_assert!(s.is_finite());
        for p in scorer.member_preferences(&aprefs) {
            prop_assert!(p.is_finite() && p >= 0.0);
        }
    }

    /// Lemma 1's base property: AP and MO are monotone non-decreasing in
    /// every member's absolute preference (with non-negative affinities).
    #[test]
    fn ap_and_mo_monotone((scorer, aprefs) in scorer_strategy(), bump in 0.01f64..2.0, idx in 0usize..5) {
        let kind = scorer.consensus().label();
        prop_assume!(kind == "AP" || kind == "MO");
        let idx = idx % aprefs.len();
        let base = scorer.score(&aprefs);
        let mut up = aprefs.clone();
        up[idx] += bump;
        prop_assert!(scorer.score(&up) >= base - 1e-9, "{kind} at member {idx}");
    }

    /// Unanimity dominance under *uniform* affinities: when every pair
    /// has the same affinity, equal absolute preferences give equal
    /// member preferences (zero disagreement), so lifting everyone to
    /// the max apref never lowers the score. (With heterogeneous
    /// affinities this is false — equal aprefs still produce unequal
    /// `pref`s through the affinity weights, and scaling them up raises
    /// the disagreement term; proptest found that counterexample, which
    /// is exactly the paper's point that affinity changes group
    /// semantics.)
    #[test]
    fn unanimous_max_dominates_with_uniform_affinity(
        n in 2usize..=5,
        aprefs in proptest::collection::vec(0.0f64..5.0, 5),
        aff in 0.0f64..1.0,
        consensus in consensus_strategy(),
        normalize in any::<bool>(),
    ) {
        let members: Vec<UserId> = (0..n as u32).map(UserId).collect();
        let pairs = n * (n - 1) / 2;
        let view = GroupAffinity::new(
            members,
            AffinityMode::StaticOnly,
            vec![aff; pairs],
            vec![],
            vec![],
        );
        let scorer = GroupScorer::new(view, consensus, normalize);
        let xs = &aprefs[..n];
        let max = xs.iter().cloned().fold(0.0f64, f64::max);
        let unanimous = vec![max; n];
        prop_assert!(scorer.score(&unanimous) >= scorer.score(xs) - 1e-9);
    }

    /// Permuting members leaves the consensus score unchanged when
    /// affinities are uniform (the functions are symmetric).
    #[test]
    fn symmetric_under_member_permutation(
        n in 2usize..=5,
        aprefs in proptest::collection::vec(0.0f64..5.0, 5),
        consensus in consensus_strategy(),
    ) {
        let members: Vec<UserId> = (0..n as u32).map(UserId).collect();
        let pairs = n * (n - 1) / 2;
        let view = GroupAffinity::new(
            members,
            AffinityMode::StaticOnly,
            vec![0.5; pairs],
            vec![],
            vec![],
        );
        let scorer = GroupScorer::new(view, consensus, true);
        let mut xs = aprefs[..n].to_vec();
        let a = scorer.score(&xs);
        xs.reverse();
        let b = scorer.score(&xs);
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// The affinity-agnostic scorer reduces exactly to the consensus over
    /// raw absolute preferences.
    #[test]
    fn agnostic_reduces_to_raw_consensus(
        n in 2usize..=5,
        aprefs in proptest::collection::vec(0.0f64..5.0, 5),
        consensus in consensus_strategy(),
    ) {
        let members: Vec<UserId> = (0..n as u32).map(UserId).collect();
        let pairs = n * (n - 1) / 2;
        let view = GroupAffinity::new(members, AffinityMode::None, vec![0.9; pairs], vec![], vec![]);
        let scorer = GroupScorer::new(view, consensus, true);
        let xs = &aprefs[..n];
        prop_assert!((scorer.score(xs) - consensus.score(xs)).abs() < 1e-12);
    }
}
