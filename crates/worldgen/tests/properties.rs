//! Property tests over generated worlds: every tier yields valid
//! substrates, and identical seeds are byte-reproducible.
//!
//! Big tiers are structurally scaled down (fewer users, same generator,
//! same catalog shape ratios) so the whole suite stays test-sized; the
//! full populations are exercised by the `world_scale` bench.

use greca_core::{BuildOptions, ScoreCompression, Substrate};
use greca_dataset::UserId;
use greca_worldgen::{GenWorld, Tier, WorldSpec, ALL_TIERS};

/// A test-sized spec that keeps the tier's structure (periods, cluster
/// count, Zipf exponent, serving/catalog ratio) but caps the sizes.
fn scaled(tier: Tier) -> WorldSpec {
    let full = tier.spec();
    let num_users = full.num_users.min(300);
    WorldSpec {
        num_users,
        num_items: full.num_items.min(600),
        serving_items: full.serving_items.min(250),
        cohort: full.cohort.min(24),
        mean_ratings_per_user: full.mean_ratings_per_user.min(20.0),
        ..full
    }
}

/// Validity of one substrate over a generated world: finite scores,
/// lists sorted by the strict (score desc, id asc) order, full item
/// coverage per segment.
fn assert_valid_substrate(world: &GenWorld, substrate: &Substrate) {
    let provider = world.provider();
    let m = substrate.num_items();
    for idx in 0..substrate.users().len() {
        let h = substrate.segment_handle(&provider, idx).unwrap();
        let (ids, scores) = (h.ids(), h.scores());
        assert_eq!(ids.len(), m);
        assert_eq!(scores.len(), m);
        for s in scores {
            assert!(s.is_finite() && *s >= 0.0, "finite non-negative scores");
        }
        for i in 1..m {
            let strictly_descending =
                scores[i - 1] > scores[i] || (scores[i - 1] == scores[i] && ids[i - 1] < ids[i]);
            assert!(
                strictly_descending,
                "list must strictly descend by (score, then id): \
                 ({}, {}) before ({}, {})",
                ids[i - 1],
                scores[i - 1],
                ids[i],
                scores[i]
            );
        }
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), m, "every universe item appears once");
    }
}

#[test]
fn every_tier_yields_valid_substrates() {
    for tier in ALL_TIERS {
        let world = GenWorld::build(scaled(tier));
        let items = world.serving_items();
        let (eager, lazy) = {
            // Mirror the tier's residency split on the scaled world:
            // 1M leaves the non-cohort population lazy.
            let (e, l) = world.substrate_users();
            (e, l)
        };
        for compression in [ScoreCompression::F64, ScoreCompression::Quantized] {
            let substrate = Substrate::build_with(
                &world.provider(),
                &world.population,
                &items,
                &eager,
                &lazy,
                BuildOptions {
                    compression,
                    ..BuildOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("tier {tier}: {e:?}"));
            assert_eq!(substrate.users().len(), world.spec.num_users);
            assert!(substrate.is_compatible_with(&world.population));
            assert_valid_substrate(&world, &substrate);
        }
    }
}

#[test]
fn affinity_pairs_are_symmetric_across_tiers() {
    use greca_affinity::AffinitySource;
    for tier in ALL_TIERS {
        let spec = scaled(tier);
        let world = GenWorld::build(spec);
        let src = world.affinity_source();
        let cohort = world.cohort_users();
        for (i, &u) in cohort.iter().enumerate() {
            for &v in &cohort[i + 1..] {
                assert_eq!(
                    src.static_raw(u, v).to_bits(),
                    src.static_raw(v, u).to_bits(),
                    "tier {tier}: static affinity must be symmetric"
                );
                for &p in world.timeline.periods() {
                    assert_eq!(
                        src.periodic_raw(u, v, p).to_bits(),
                        src.periodic_raw(v, u, p).to_bits(),
                        "tier {tier}: periodic affinity must be symmetric"
                    );
                }
            }
        }
        // The built index agrees with itself when rebuilt — the
        // population layer sees one value per unordered pair.
        assert!(world.population.num_pairs() > 0);
    }
}

#[test]
fn identical_seeds_are_byte_reproducible_per_tier() {
    for tier in ALL_TIERS {
        let spec = scaled(tier);
        let a = GenWorld::build(spec);
        let b = GenWorld::build(spec);
        for u in 0..spec.num_users as u32 {
            let (ra, rb) = (
                a.matrix.user_ratings(UserId(u)),
                b.matrix.user_ratings(UserId(u)),
            );
            assert_eq!(ra.len(), rb.len());
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.0, y.0);
                assert_eq!(x.1.to_bits(), y.1.to_bits(), "bytes, not approx");
            }
        }
        // Substrates built from the two worlds are bit-identical too.
        let items = a.serving_items();
        let sa = Substrate::build(&a.provider(), &a.population, &items).unwrap();
        let sb = Substrate::build(&b.provider(), &b.population, &items).unwrap();
        for idx in 0..sa.users().len().min(20) {
            let (ha, hb) = (
                sa.segment_handle(&a.provider(), idx).unwrap(),
                sb.segment_handle(&b.provider(), idx).unwrap(),
            );
            assert_eq!(ha.ids(), hb.ids());
            let bits = |h: &greca_core::SegmentHandle| {
                h.scores().iter().map(|s| s.to_bits()).collect::<Vec<_>>()
            };
            assert_eq!(bits(&ha), bits(&hb));
        }
        // Streams and workloads reproduce as well.
        assert_eq!(a.rating_stream(40, 3), b.rating_stream(40, 3));
        let (ga, gb) = (
            a.group_workload(6, 4, 0.5, 9),
            b.group_workload(6, 4, 0.5, 9),
        );
        assert_eq!(
            ga.iter().map(|g| g.members().to_vec()).collect::<Vec<_>>(),
            gb.iter().map(|g| g.members().to_vec()).collect::<Vec<_>>()
        );
    }
}

#[test]
fn quantized_substrate_is_bit_identical_at_study_shape() {
    // The serving lists' score sets are tiny (star ratings), so dict
    // quantization must reproduce the dense path bit for bit.
    let world = GenWorld::build(scaled(Tier::Study));
    let items = world.serving_items();
    let provider = world.provider();
    let all: Vec<UserId> = (0..world.spec.num_users as u32).map(UserId).collect();
    let dense = Substrate::build_with(
        &provider,
        &world.population,
        &items,
        &all,
        &[],
        BuildOptions::default(),
    )
    .unwrap();
    let quant = Substrate::build_with(
        &provider,
        &world.population,
        &items,
        &all,
        &[],
        BuildOptions {
            compression: ScoreCompression::Quantized,
            ..BuildOptions::default()
        },
    )
    .unwrap();
    assert_eq!(quant.quant_error_bound(), 0.0);
    for idx in 0..dense.users().len() {
        let hd = dense.segment_handle(&provider, idx).unwrap();
        let hq = quant.segment_handle(&provider, idx).unwrap();
        assert_eq!(hd.ids(), hq.ids());
        let (db, qb): (Vec<u64>, Vec<u64>) = (
            hd.scores().iter().map(|s| s.to_bits()).collect(),
            hq.scores().iter().map(|s| s.to_bits()).collect(),
        );
        assert_eq!(db, qb);
    }
    assert!(
        (quant.pref_bytes() as f64) < 0.6 * dense.pref_bytes() as f64,
        "quantized storage at least 40% smaller: {} vs {}",
        quant.pref_bytes(),
        dense.pref_bytes()
    );
}

#[test]
fn generated_worlds_drive_the_engine_end_to_end() {
    use greca_core::GrecaEngine;
    let world = GenWorld::build(scaled(Tier::Users10k));
    let items = world.serving_items();
    let provider = world.provider();
    let engine =
        GrecaEngine::warm_for(&provider, &world.population, &items, &world.cohort_users()).unwrap();
    for group in world.group_workload(5, 4, 0.5, 2) {
        let top = engine.query(&group).items(&items).top(5).run().unwrap();
        assert_eq!(top.items.len(), 5);
        for it in &top.items {
            assert!(it.lb.is_finite() && it.ub.is_finite());
            assert!((it.item.0 as usize) < world.spec.serving_items);
        }
    }
}
