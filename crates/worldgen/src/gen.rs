//! The generator: seeded synthetic worlds at any [`Tier`].
//!
//! One [`WorldSpec`] deterministically produces a rating matrix with
//! Zipf (power-law) item popularity and log-normal per-user activity, a
//! latent cluster × genre taste grid (users in one cluster like the
//! same genres — the structure group recommendation needs to expose),
//! a bounded group-forming cohort with a hash-derived affinity index,
//! overlapping-membership group workloads, and timestamped rating
//! streams for `LiveEngine::ingest`. Everything downstream consumes the
//! existing interfaces: the matrix is a plain
//! [`RatingMatrix`], preferences come from any
//! [`PreferenceProvider`](greca_cf::PreferenceProvider) over it (the
//! scale path wraps [`RawRatings`]), affinity from a standard
//! [`PopulationAffinity`].

use crate::tier::{Tier, WorldSpec};
use greca_affinity::{AffinitySource, PopulationAffinity};
use greca_cf::RawRatings;
use greca_dataset::randx::{
    log_normal, normal, sample_distinct, to_star_rating, zipf_weights, CumTable,
};
use greca_dataset::{
    Granularity, Group, ItemId, Period, Rating, RatingMatrix, RatingMatrixBuilder, Timeline, UserId,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// SplitMix64 — the cheap stateless mixer behind every hash-derived
/// signal (tastes, clusters, affinities). Statelessness is the point:
/// pair affinities are evaluated on demand with no stored pair state,
/// so the cohort's quadratic cost is paid only inside the affinity
/// index, never in the generator.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from a hash key.
fn hash01(key: u64) -> f64 {
    (splitmix64(key) >> 11) as f64 / (1u64 << 53) as f64
}

/// Mix several key parts into one hash key.
fn key(parts: &[u64]) -> u64 {
    let mut acc = 0xa076_1d64_78bd_642f_u64;
    for &p in parts {
        acc = splitmix64(acc ^ p);
    }
    acc
}

const SALT_CLUSTER: u64 = 0x01;
const SALT_GENRE: u64 = 0x02;
const SALT_TASTE: u64 = 0x03;
const SALT_STATIC: u64 = 0x04;
const SALT_PERIODIC: u64 = 0x05;
const SALT_STREAM: u64 = 0x06;
const SALT_GROUPS: u64 = 0x07;

/// Deterministic, symmetric pair-affinity signals for a generated
/// world, derived by hashing the unordered pair (plus the world seed) —
/// no stored pair state, so the source itself is O(1) memory at any
/// cohort size.
///
/// Users sharing a cluster get a strong static base and a high
/// co-activity probability per period; cross-cluster pairs keep a weak
/// noisy baseline. All values are finite and non-negative, as
/// [`PopulationAffinity`] requires.
#[derive(Debug, Clone, Copy)]
pub struct HashAffinitySource {
    seed: u64,
    num_clusters: usize,
}

impl HashAffinitySource {
    /// The affinity source of `spec`'s world.
    pub fn new(spec: &WorldSpec) -> Self {
        HashAffinitySource {
            seed: spec.seed,
            num_clusters: spec.num_clusters.max(1),
        }
    }

    /// The taste/affinity cluster of a user.
    pub fn cluster_of(&self, u: UserId) -> usize {
        (splitmix64(key(&[self.seed, SALT_CLUSTER, u.0 as u64])) % self.num_clusters as u64)
            as usize
    }

    /// Key over the unordered pair (symmetry by construction).
    fn pair_key(&self, u: UserId, v: UserId, salt: u64) -> u64 {
        let (a, b) = if u.0 <= v.0 { (u.0, v.0) } else { (v.0, u.0) };
        key(&[self.seed, salt, a as u64, b as u64])
    }
}

impl AffinitySource for HashAffinitySource {
    fn static_raw(&self, u: UserId, v: UserId) -> f64 {
        let base = if self.cluster_of(u) == self.cluster_of(v) {
            3.0
        } else {
            0.4
        };
        base + 2.0 * hash01(self.pair_key(u, v, SALT_STATIC))
    }

    fn periodic_raw(&self, u: UserId, v: UserId, period: Period) -> f64 {
        let p_active = if self.cluster_of(u) == self.cluster_of(v) {
            0.6
        } else {
            0.15
        };
        let k = key(&[self.pair_key(u, v, SALT_PERIODIC), period.start as u64]);
        if hash01(k) < p_active {
            1.0 + 9.0 * hash01(key(&[k, 1]))
        } else {
            0.0
        }
    }
}

/// A fully generated world at some tier: ratings, timeline, and the
/// cohort's affinity index, all deterministic under the spec's seed.
#[derive(Debug)]
pub struct GenWorld {
    /// The spec this world was generated from.
    pub spec: WorldSpec,
    /// The rating matrix (all users × the full catalog).
    pub matrix: RatingMatrix,
    /// The discretized horizon (`spec.num_periods` periods).
    pub timeline: Timeline,
    /// The affinity index over the group-forming cohort (users
    /// `0..spec.cohort`).
    pub population: PopulationAffinity,
}

impl GenWorld {
    /// Generate the world for a tier under its default seed.
    pub fn of_tier(tier: Tier) -> Self {
        Self::build(tier.spec())
    }

    /// Generate the world for an explicit spec.
    ///
    /// Generation is sequential and single-streamed on purpose: one
    /// `StdRng` over users in id order makes identical specs
    /// byte-reproducible regardless of host parallelism.
    pub fn build(spec: WorldSpec) -> Self {
        assert!(spec.num_users >= 2, "need at least two users");
        assert!(spec.serving_items <= spec.num_items);
        assert!(spec.cohort >= 2 && spec.cohort <= spec.num_users);
        assert!(spec.num_periods >= 1 && spec.period_len > 0);
        let timeline =
            Timeline::discretize(0, spec.horizon(), Granularity::Custom(spec.period_len))
                .expect("positive horizon");
        let source = HashAffinitySource::new(&spec);
        let popularity = CumTable::new(&zipf_weights(spec.num_items, spec.zipf_exponent));
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut builder = RatingMatrixBuilder::new(spec.num_users, spec.num_items);
        let horizon = spec.horizon();
        let mu = spec.mean_ratings_per_user.ln();
        for u in 0..spec.num_users {
            let user = UserId(u as u32);
            let want = log_normal(&mut rng, mu, 0.45)
                .round()
                .clamp(3.0, spec.mean_ratings_per_user * 8.0) as usize;
            for idx in sample_distinct(&mut rng, &popularity, want) {
                let item = ItemId(idx as u32);
                let value = rate(&source, &spec, &mut rng, user, item);
                builder.push(Rating {
                    user,
                    item,
                    value,
                    ts: rng.random_range(0..horizon),
                });
            }
        }
        let matrix = builder.build();
        let cohort: Vec<UserId> = (0..spec.cohort as u32).map(UserId).collect();
        let population = PopulationAffinity::build(&source, &cohort, &timeline);
        GenWorld {
            spec,
            matrix,
            timeline,
            population,
        }
    }

    /// The serving itemset — the paper's §4.2 item range. The Zipf
    /// popularity model concentrates ratings on low item ids, so the
    /// first `serving_items` ids are the catalog's popular head.
    pub fn serving_items(&self) -> Vec<ItemId> {
        (0..self.spec.serving_items as u32).map(ItemId).collect()
    }

    /// The group-forming cohort (the population-affinity universe).
    pub fn cohort_users(&self) -> Vec<UserId> {
        (0..self.spec.cohort as u32).map(UserId).collect()
    }

    /// The substrate residency split for this tier: `(eager, lazy)`
    /// user lists for `Substrate::build_with`. Every tier keeps the
    /// cohort eager; the 1M tier leaves the non-cohort population lazy
    /// (a million resident lists is exactly what the lazy path exists
    /// to avoid), smaller tiers build everyone eagerly.
    pub fn substrate_users(&self) -> (Vec<UserId>, Vec<UserId>) {
        let all: Vec<UserId> = (0..self.spec.num_users as u32).map(UserId).collect();
        match self.spec.tier {
            Tier::Users1M => {
                let cohort = self.cohort_users();
                let lazy = all[self.spec.cohort..].to_vec();
                (cohort, lazy)
            }
            _ => (all, Vec::new()),
        }
    }

    /// The raw-ratings preference provider over this world's matrix —
    /// the scale path (CF model fitting stays available through the
    /// usual `greca-cf` constructors for cohort-sized user sets).
    pub fn provider(&self) -> RawRatings<'_> {
        RawRatings(&self.matrix)
    }

    /// The world's affinity source (for building custom populations or
    /// checking signals directly).
    pub fn affinity_source(&self) -> HashAffinitySource {
        HashAffinitySource::new(&self.spec)
    }

    /// An overlapping-membership group workload over the cohort:
    /// `num_groups` groups of `size` members where consecutive groups
    /// share ~`overlap` of their membership — the repeat-group shape
    /// serving caches and the affinity cache are sensitive to.
    /// Deterministic under `(spec.seed, salt)`.
    pub fn group_workload(
        &self,
        num_groups: usize,
        size: usize,
        overlap: f64,
        salt: u64,
    ) -> Vec<Group> {
        assert!(
            size >= 2 && size <= self.spec.cohort,
            "group size within cohort"
        );
        assert!((0.0..=1.0).contains(&overlap), "overlap is a fraction");
        let mut rng = StdRng::seed_from_u64(key(&[self.spec.seed, SALT_GROUPS, salt]));
        let cohort = self.spec.cohort as u32;
        let keep = ((size as f64 * overlap).round() as usize).min(size.saturating_sub(1));
        let mut groups = Vec::with_capacity(num_groups);
        let mut prev: Vec<UserId> = Vec::new();
        for _ in 0..num_groups {
            let mut members: Vec<UserId> = prev.iter().copied().take(keep).collect();
            while members.len() < size {
                let cand = UserId(rng.random_range(0..cohort));
                if !members.contains(&cand) {
                    members.push(cand);
                }
            }
            prev = members.clone();
            groups.push(Group::new(members).expect("non-empty distinct members"));
        }
        groups
    }

    /// A timestamped rating stream for `LiveEngine::ingest`: `count`
    /// fresh cohort ratings over the serving itemset, timestamped past
    /// the generated horizon (strictly increasing), deterministic under
    /// `(spec.seed, salt)`.
    pub fn rating_stream(&self, count: usize, salt: u64) -> Vec<Rating> {
        let mut rng = StdRng::seed_from_u64(key(&[self.spec.seed, SALT_STREAM, salt]));
        let source = self.affinity_source();
        let horizon = self.spec.horizon();
        (0..count)
            .map(|i| {
                let user = UserId(rng.random_range(0..self.spec.cohort as u32));
                let item = ItemId(rng.random_range(0..self.spec.serving_items as u32));
                Rating {
                    user,
                    item,
                    value: rate(&source, &self.spec, &mut rng, user, item),
                    ts: horizon + i as i64,
                }
            })
            .collect()
    }
}

/// One star rating from the latent taste grid: the user's cluster meets
/// the item's genre, plus observation noise.
fn rate(
    source: &HashAffinitySource,
    spec: &WorldSpec,
    rng: &mut StdRng,
    user: UserId,
    item: ItemId,
) -> f32 {
    let genre =
        splitmix64(key(&[spec.seed, SALT_GENRE, item.0 as u64])) % spec.num_genres.max(1) as u64;
    let taste = hash01(key(&[
        spec.seed,
        SALT_TASTE,
        source.cluster_of(user) as u64,
        genre,
    ]));
    let base = 1.0 + 4.0 * taste;
    to_star_rating(normal(rng, base, 0.7))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> WorldSpec {
        WorldSpec {
            num_users: 60,
            num_items: 300,
            serving_items: 120,
            cohort: 12,
            mean_ratings_per_user: 15.0,
            ..Tier::Study.spec()
        }
    }

    #[test]
    fn world_shape_matches_spec() {
        let w = GenWorld::build(tiny_spec());
        assert_eq!(w.matrix.num_users(), 60);
        assert_eq!(w.matrix.num_items(), 300);
        assert_eq!(w.population.universe().len(), 12);
        assert_eq!(w.timeline.num_periods(), 6);
        assert_eq!(w.serving_items().len(), 120);
        assert!(w.matrix.num_ratings() > 60 * 3);
    }

    #[test]
    fn popularity_is_head_heavy() {
        let w = GenWorld::build(tiny_spec());
        let mut counts = vec![0usize; w.matrix.num_items()];
        for u in w.matrix.users() {
            for &(i, _) in w.matrix.user_ratings(u) {
                counts[i.0 as usize] += 1;
            }
        }
        let head: usize = counts[..30].iter().sum();
        let tail: usize = counts[270..].iter().sum();
        assert!(head > tail * 3, "Zipf head {head} should dwarf tail {tail}");
    }

    #[test]
    fn affinity_source_is_symmetric_and_finite() {
        let spec = tiny_spec();
        let src = HashAffinitySource::new(&spec);
        let tl =
            Timeline::discretize(0, spec.horizon(), Granularity::Custom(spec.period_len)).unwrap();
        for a in 0..10u32 {
            for b in (a + 1)..10u32 {
                let (u, v) = (UserId(a), UserId(b));
                let s = src.static_raw(u, v);
                assert!(s.is_finite() && s >= 0.0);
                assert_eq!(s.to_bits(), src.static_raw(v, u).to_bits());
                for &p in tl.periods() {
                    let x = src.periodic_raw(u, v, p);
                    assert!(x.is_finite() && x >= 0.0);
                    assert_eq!(x.to_bits(), src.periodic_raw(v, u, p).to_bits());
                }
            }
        }
    }

    #[test]
    fn workload_overlaps_and_streams_are_deterministic() {
        let w = GenWorld::build(tiny_spec());
        let groups = w.group_workload(10, 5, 0.6, 1);
        assert_eq!(groups.len(), 10);
        for pair in groups.windows(2) {
            let shared = pair[1]
                .members()
                .iter()
                .filter(|m| pair[0].members().contains(m))
                .count();
            assert!(shared >= 2, "consecutive groups share members");
        }
        assert_eq!(
            w.group_workload(10, 5, 0.6, 1)
                .iter()
                .map(|g| g.members().to_vec())
                .collect::<Vec<_>>(),
            groups
                .iter()
                .map(|g| g.members().to_vec())
                .collect::<Vec<_>>()
        );

        let s1 = w.rating_stream(50, 7);
        let s2 = w.rating_stream(50, 7);
        assert_eq!(s1, s2);
        assert_ne!(s1, w.rating_stream(50, 8), "salt varies the stream");
        let horizon = w.spec.horizon();
        for r in &s1 {
            assert!(r.ts >= horizon, "stream is strictly post-horizon");
            assert!((1.0..=5.0).contains(&(r.value as f64)));
            assert!(r.user.0 < w.spec.cohort as u32);
        }
    }

    #[test]
    fn identical_seeds_are_byte_reproducible() {
        let a = GenWorld::build(tiny_spec());
        let b = GenWorld::build(tiny_spec());
        for u in a.matrix.users() {
            assert_eq!(a.matrix.user_ratings(u), b.matrix.user_ratings(u));
        }
        let mut c = tiny_spec();
        c.seed ^= 1;
        let c = GenWorld::build(c);
        let differs = a
            .matrix
            .users()
            .any(|u| a.matrix.user_ratings(u) != c.matrix.user_ratings(u));
        assert!(differs, "a different seed yields a different world");
    }
}
