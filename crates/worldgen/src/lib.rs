//! # greca-worldgen
//!
//! Deterministic, seedable synthetic worlds at named scale tiers for
//! the GRECA reproduction — the testbed behind the ROADMAP's
//! "production-scale" north star.
//!
//! The paper's evaluation world (77 study users over a MovieLens-1M
//! fingerprint) fits in a few MiB; every claim about substrate
//! sharding, quantized scores or lazy residency needs worlds that
//! *don't*. This crate generates them:
//!
//! * [`Tier`] — `study` / `10k` / `100k` / `1m` user populations over
//!   ≥100k-item catalogs (the `study` tier mirrors the paper's shape);
//! * [`GenWorld`] — Zipf item popularity, log-normal user activity, a
//!   latent cluster × genre taste grid, a bounded group-forming cohort
//!   with a hash-derived [`PopulationAffinity`](greca_affinity::PopulationAffinity) index, overlapping
//!   group workloads, and post-horizon rating streams for
//!   `LiveEngine::ingest`;
//! * everything surfaces through the existing interfaces
//!   ([`RatingMatrix`](greca_dataset::RatingMatrix),
//!   [`PreferenceProvider`](greca_cf::PreferenceProvider),
//!   [`PopulationAffinity`](greca_affinity::PopulationAffinity)), so the engine, live, serve and bench
//!   layers run on generated worlds unchanged.
//!
//! Identical specs (tier + seed) are byte-reproducible; generation is
//! deliberately single-streamed so host parallelism cannot perturb it.
//!
//! ```
//! use greca_worldgen::{GenWorld, Tier, WorldSpec};
//!
//! // A scaled-down study-shaped world (full tiers are bench-sized).
//! let spec = WorldSpec { num_users: 50, num_items: 200, serving_items: 80,
//!                        cohort: 10, mean_ratings_per_user: 12.0, ..Tier::Study.spec() };
//! let world = GenWorld::build(spec);
//! assert_eq!(world.population.universe().len(), 10);
//! let groups = world.group_workload(4, 3, 0.5, 0);
//! assert_eq!(groups.len(), 4);
//! ```

pub mod gen;
pub mod tier;

pub use gen::{GenWorld, HashAffinitySource};
pub use tier::{Tier, WorldSpec, ALL_TIERS, DEFAULT_SEED};
