//! Scale tiers and their world specifications.

use std::fmt;

/// Default world seed (any `u64` works; tiers only fix the *shape*).
pub const DEFAULT_SEED: u64 = 0x57a7_1e5e_ed00_06d5;

/// A named population scale for generated worlds.
///
/// The `study` tier mirrors the paper's evaluation shape (a ~400-user
/// rating world whose full catalog is served, with a 77-user study
/// cohort); the larger tiers keep the paper's 3,900-item *serving*
/// range (§4.2) while growing the user population and the world catalog
/// past 100k items, which is what the substrate's sharding, quantization
/// and lazy-residency machinery exists for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Paper-study shape: 400 users, 3,900 items (all served), 77-user
    /// cohort, six two-month periods.
    Study,
    /// 10,000 users over a 120k-item catalog, 500-user cohort.
    Users10k,
    /// 100,000 users over a 120k-item catalog, 1,000-user cohort.
    Users100k,
    /// 1,000,000 users over a 150k-item catalog, 1,500-user cohort.
    /// Substrates at this tier are meant to be built with a lazy
    /// non-cohort residency (see `GenWorld::substrate_users`).
    Users1M,
}

/// Every tier, smallest first.
pub const ALL_TIERS: [Tier; 4] = [Tier::Study, Tier::Users10k, Tier::Users100k, Tier::Users1M];

impl Tier {
    /// Parse a tier name as used by bench CLIs (`study`, `10k`, `100k`,
    /// `1m`; case-insensitive).
    pub fn parse(s: &str) -> Option<Tier> {
        match s.to_ascii_lowercase().as_str() {
            "study" => Some(Tier::Study),
            "10k" => Some(Tier::Users10k),
            "100k" => Some(Tier::Users100k),
            "1m" | "1000k" => Some(Tier::Users1M),
            _ => None,
        }
    }

    /// The canonical CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Tier::Study => "study",
            Tier::Users10k => "10k",
            Tier::Users100k => "100k",
            Tier::Users1M => "1m",
        }
    }

    /// The tier's world specification under the default seed.
    pub fn spec(&self) -> WorldSpec {
        self.spec_with_seed(DEFAULT_SEED)
    }

    /// The tier's world specification under an explicit seed.
    pub fn spec_with_seed(&self, seed: u64) -> WorldSpec {
        let two_months: i64 = 60 * 86_400;
        match self {
            Tier::Study => WorldSpec {
                tier: *self,
                num_users: 400,
                num_items: 3_900,
                serving_items: 3_900,
                cohort: 77,
                mean_ratings_per_user: 100.0,
                num_periods: 6,
                period_len: two_months,
                num_clusters: 13,
                num_genres: 18,
                zipf_exponent: 1.07,
                seed,
            },
            Tier::Users10k => WorldSpec {
                tier: *self,
                num_users: 10_000,
                num_items: 120_000,
                serving_items: 3_900,
                cohort: 500,
                mean_ratings_per_user: 40.0,
                num_periods: 4,
                period_len: two_months,
                num_clusters: 40,
                num_genres: 18,
                zipf_exponent: 1.07,
                seed,
            },
            Tier::Users100k => WorldSpec {
                tier: *self,
                num_users: 100_000,
                num_items: 120_000,
                serving_items: 3_900,
                cohort: 1_000,
                mean_ratings_per_user: 30.0,
                num_periods: 4,
                period_len: two_months,
                num_clusters: 80,
                num_genres: 18,
                zipf_exponent: 1.07,
                seed,
            },
            Tier::Users1M => WorldSpec {
                tier: *self,
                num_users: 1_000_000,
                num_items: 150_000,
                serving_items: 3_900,
                cohort: 1_500,
                mean_ratings_per_user: 20.0,
                num_periods: 4,
                period_len: two_months,
                num_clusters: 200,
                num_genres: 18,
                zipf_exponent: 1.07,
                seed,
            },
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The full shape of one generated world. [`Tier::spec`] produces the
/// canonical per-tier values; fields are public so tests and benches
/// can scale a tier's *structure* down (fewer users, same generator)
/// without inventing a new tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldSpec {
    /// The tier this spec descends from (kept for labeling even when
    /// fields are overridden).
    pub tier: Tier,
    /// Total users in the rating world.
    pub num_users: usize,
    /// Total items in the catalog (rating distributions span all of
    /// them; only [`WorldSpec::serving_items`] are served).
    pub num_items: usize,
    /// Size of the serving itemset (the paper's §4.2 item range). The
    /// Zipf popularity model makes low item ids the popular head, so
    /// the serving set is items `0..serving_items`.
    pub serving_items: usize,
    /// Size of the group-forming cohort — the population-affinity
    /// universe. Kept bounded at every tier: the affinity index stores
    /// dense pair arrays, quadratic in this number.
    pub cohort: usize,
    /// Mean of the per-user rating-count distribution (log-normal).
    pub mean_ratings_per_user: f64,
    /// Number of timeline periods.
    pub num_periods: usize,
    /// Period length in seconds.
    pub period_len: i64,
    /// Taste/affinity cluster count (users in one cluster share tastes
    /// and a higher co-activity).
    pub num_clusters: usize,
    /// Item genre count (cluster × genre gives the latent taste grid).
    pub num_genres: usize,
    /// Zipf exponent of item popularity.
    pub zipf_exponent: f64,
    /// The world seed; identical specs are byte-reproducible.
    pub seed: u64,
}

impl WorldSpec {
    /// The rating-stream horizon (timeline end).
    pub fn horizon(&self) -> i64 {
        self.num_periods as i64 * self.period_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_names() {
        for t in ALL_TIERS {
            assert_eq!(Tier::parse(t.name()), Some(t));
        }
        assert_eq!(Tier::parse("1M"), Some(Tier::Users1M));
        assert_eq!(Tier::parse("STUDY"), Some(Tier::Study));
        assert_eq!(Tier::parse("2k"), None);
    }

    #[test]
    fn tiers_scale_monotonically() {
        let specs: Vec<WorldSpec> = ALL_TIERS.iter().map(|t| t.spec()).collect();
        for w in specs.windows(2) {
            assert!(w[0].num_users < w[1].num_users);
            assert!(w[0].cohort <= w[1].cohort);
        }
        // Non-study tiers carry the ≥100k-item catalog the issue asks
        // for while serving the paper's 3,900-item range.
        for s in &specs[1..] {
            assert!(s.num_items >= 100_000);
            assert_eq!(s.serving_items, 3_900);
        }
    }
}
