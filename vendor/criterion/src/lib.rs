//! Offline stand-in for `criterion`, covering the API slice the
//! workspace's benches use: `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`
//! / `iter_with_setup`, and the `criterion_group!` / `criterion_main!`
//! macros.
//!
//! The real criterion cannot be fetched offline. This stand-in runs each
//! benchmark for a short warm-up, then measures a fixed wall-clock
//! window and reports mean iteration time — good enough to eyeball
//! regressions and to keep `cargo bench` green, without criterion's
//! statistics, plotting, or baseline storage. Swap `vendor/` for the
//! real crate to regain those.

use std::time::{Duration, Instant};

/// Measurement settings (fixed; the real crate tunes these per bench).
const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(250);

/// Re-export mirror of `criterion::black_box` (deprecated there in favor
/// of `std::hint::black_box`, which the workspace uses directly).
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        run_one(&full, &mut f);
        self
    }

    /// Benchmark `f` with one input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label());
        run_one(&full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Set the sample count (accepted for API compatibility; the fixed
    /// measurement window ignores it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// End the group (a no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// Passed to benchmark closures; drives the measurement loop.
pub struct Bencher {
    /// `(iterations, total elapsed)` accumulated by `iter*`.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up.
        let start = Instant::now();
        while start.elapsed() < WARMUP {
            black_box(routine());
        }
        // Measure.
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < MEASURE {
            black_box(routine());
            iters += 1;
        }
        self.result = Some((iters.max(1), start.elapsed()));
    }

    /// Measure `routine` on fresh inputs from `setup` (setup excluded
    /// from timing).
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < MEASURE {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
            iters += 1;
        }
        self.result = Some((iters.max(1), elapsed));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher { result: None };
    f(&mut b);
    match b.result {
        Some((iters, total)) => {
            let per = total.as_secs_f64() / iters as f64;
            println!("  {label:<40} {:>12}/iter  ({iters} iters)", fmt_time(per));
        }
        None => println!("  {label:<40} (no measurement)"),
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
