//! Offline stand-in for `rand`, API-compatible with the slice the
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `RngExt::{random, random_range}`.
//!
//! The container has no crate registry, so the real `rand` cannot be
//! fetched. The workspace only needs a deterministic, seedable,
//! statistically reasonable PRNG for synthetic data generation — not
//! cryptographic strength — so `StdRng` here is xoshiro256** seeded via
//! SplitMix64 (the reference construction from Blackman & Vigna).
//! Streams are stable across platforms and releases, which the
//! reproduction relies on for seeded determinism. Replace `vendor/` with
//! the real crates when a registry is reachable.

use std::ops::{Range, RangeInclusive};

/// Minimal RNG core: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible uniformly "at random" (the `Standard` distribution).
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Integer types uniformly samplable from a span (used by ranges).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `[low, low + span)`; `span > 0`.
    fn sample_span<R: RngCore + ?Sized>(rng: &mut R, low: Self, span: u64) -> Self;
    /// `high − low` as a `u64` span.
    fn span_to(self, high: Self) -> u64;
}

/// Unbiased `[0, span)` via Lemire's multiply-shift rejection method.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = (rng.next_u64() as u128).wrapping_mul(span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_span<R: RngCore + ?Sized>(rng: &mut R, low: Self, span: u64) -> Self {
                low + uniform_u64(rng, span) as $t
            }
            fn span_to(self, high: Self) -> u64 {
                (high - self) as u64
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_span<R: RngCore + ?Sized>(rng: &mut R, low: Self, span: u64) -> Self {
                low.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn span_to(self, high: Self) -> u64 {
                high.wrapping_sub(self) as u64
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let span = self.start.span_to(self.end);
        T::sample_span(rng, self.start, span)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample from an empty range");
        // `span_to` of an inclusive bound: widen by one; the u64 carrier
        // cannot overflow for the workspace's integer types.
        let span = low.span_to(high) + 1;
        T::sample_span(rng, low, span)
    }
}

/// The ergonomic sampling surface, mirroring `rand::Rng`/`RngExt`.
pub trait RngExt: RngCore {
    /// Uniform value of `T` (the standard distribution).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn random_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let i = rng.random_range(0usize..5);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.random_range(3i64..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
