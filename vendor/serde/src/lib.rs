//! Offline stand-in for `serde`.
//!
//! The container has no crate registry, so the real `serde` cannot be
//! fetched. Workspace types only *derive* `Serialize`/`Deserialize` as a
//! forward-looking marker — nothing serializes through serde yet (JSON
//! artifacts are written by hand in `greca-bench`). The stub therefore
//! provides marker traits with blanket impls plus no-op derive macros,
//! which keeps every `#[derive(Serialize, Deserialize)]` and trait bound
//! in the workspace compiling unchanged. Replace `vendor/` with the real
//! crates when a registry is reachable; no workspace code needs to
//! change for that swap.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub mod de {
    /// Types deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}
