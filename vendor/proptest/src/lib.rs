//! Offline stand-in for `proptest`, covering the slice the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`Just`], `any::<bool>()`,
//! `collection::vec`, [`ProptestConfig`], the `prop_assert*` /
//! `prop_assume` macros, and the [`proptest!`] test macro.
//!
//! The real proptest cannot be fetched offline. This stand-in keeps the
//! same *testing semantics* — N random cases per property, deterministic
//! under a fixed seed, assumption filtering — but does **not** implement
//! shrinking: a failing case reports its inputs via the panic message
//! (every strategy value is `Debug`) without minimization. That is an
//! acceptable trade for an offline CI gate; swap `vendor/` for the real
//! crate to regain shrinking.

use rand::rngs::StdRng;

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values (no shrinking — see the crate docs).
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chain a dependent strategy off generated values.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Box the strategy (type erasure).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// Type-erased strategy (mirrors `proptest::strategy::BoxedStrategy`).
#[derive(Clone)]
pub struct BoxedStrategy<T>(std::rc::Rc<dyn DynStrategy<Value = T>>);

trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut StdRng) -> Self::Value {
        self.generate(rng)
    }
}

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

mod ranges {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            self.start + rng.random::<f64>() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            // The closed upper bound is a measure-zero nicety; reuse the
            // half-open sampler.
            self.start() + rng.random::<f64>() * (self.end() - self.start())
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);

/// `any::<T>()` support (mirrors `proptest::arbitrary`).
pub mod arbitrary {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// The canonical strategy.
        type Strategy: Strategy<Value = Self>;
        /// Build it.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy produced by [`any`] for primitive types.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    macro_rules! impl_any_via_random {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random()
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_any_via_random!(bool, u32, u64, f64);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::Range;

    /// Element count for [`vec()`]: a fixed size or a sampled range.
    pub trait SizeRange {
        /// Draw the length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for `Vec<T>` with per-element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` of `len` elements drawn from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Signals a property runner to discard or fail the current case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: draw another case.
    Reject(String),
    /// `prop_assert*!` failed: the property is false.
    Fail(String),
}

/// Property-body result (mirrors `proptest::test_runner::TestCaseResult`).
pub type TestCaseResult = Result<(), TestCaseError>;

/// Everything a property test needs, in one import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Run one property: `cases` random draws, retrying rejected cases (up
/// to a global cap, like the real runner) and panicking with the drawn
/// inputs on failure.
pub fn run_property<S: Strategy>(
    config: &ProptestConfig,
    name: &str,
    strategy: &S,
    body: impl Fn(S::Value) -> TestCaseResult,
) {
    // Deterministic per-property stream: tests must not flake offline.
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rejects: u32 = 0;
    let max_rejects = config.cases.saturating_mul(16).max(1024);
    let mut run = 0;
    while run < config.cases {
        let value = strategy.generate(&mut rng);
        let shown = format!("{value:?}");
        match body(value) {
            Ok(()) => run += 1,
            Err(TestCaseError::Reject(why)) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "property `{name}`: too many prop_assume rejections ({why})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed after {run} passing case(s)\n  inputs: {shown}\n  {msg}")
            }
        }
    }
}

pub use rand::SeedableRng;

/// `prop_assert!(cond, args...)` — fail the case without aborting the
/// process (the runner reports the inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!(a, b)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` == `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)*);
    }};
}

/// `prop_assert_ne!(a, b)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, "assertion failed: `{:?}` != `{:?}`", __a, __b);
    }};
}

/// `prop_assume!(cond)` — discard the case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// The `proptest!` test-definition macro.
///
/// Supports the real macro's common form: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __strategy = ($($strat,)+);
                $crate::run_property(
                    &__config,
                    stringify!($name),
                    &__strategy,
                    |($($pat,)+)| -> $crate::TestCaseResult {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}
