//! No-op `#[derive(Serialize, Deserialize)]` macros.
//!
//! The workspace builds offline; the real `serde_derive` is unavailable.
//! Workspace types use the derives only as forward-looking markers (no
//! code path serializes yet), so expanding to nothing is sufficient: the
//! blanket impls in the `serde` stub make every type satisfy the trait
//! bounds. Swap `vendor/` for the real crates when a registry is
//! reachable.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
